//! CLI subcommand implementations.

use crate::args::{ArgError, Args};
use cm_events::{EventCatalog, SampleMode};
use cm_load::{
    chaos_sweep, prepare_store, run_workload, saturation_sweep, LoadReport, LoopMode, RunMetrics,
    Workload as LoadWorkload,
};
use cm_ml::{SgbrtConfig, Trainer};
use cm_serve::{Pending, Request, Response, ServeConfig, Server, ServerHandle};
use cm_sim::{Benchmark, PmuConfig, SparkParam, SparkStudy, Workload, ALL_BENCHMARKS};
use cm_store::{Database, SeriesKey, Store};
use counterminer::case_study::{
    rank_param_event_interactions, sweep_parameter, ProfilingCostModel,
};
use counterminer::error_metrics::mlpx_error;
use counterminer::{
    collector, CleanerKind, ClusterConfig, CounterMiner, DataCleaner, ImportanceConfig, MinerConfig,
};
use std::error::Error;
use std::path::Path;
use std::time::Duration;

type CmdResult = Result<(), Box<dyn Error>>;

/// Usage text shown by `counterminer help`.
pub const USAGE: &str = "\
counterminer — mining big performance data from hardware counters

USAGE: counterminer <command> [options]

COMMANDS:
  catalog [--abbrev ISF]            list the 229-event Haswell-E catalog,
                                    or look one event up
  benchmarks                        list the sixteen simulated benchmarks
  collect <benchmark> --out DIR     profile a benchmark on the simulated
        [--runs N] [--events N]     PMU and persist the two-level store
        [--ocoe] [--seed S]
  show <DIR> [--program NAME]       summarize a persisted store
  clean <DIR> --out DIR2            clean every multiplexed run of a
                                    store, writing the cleaned store
  import <FILE> --out DIR           parse `perf stat -I -x,` interval
        [--program NAME] [--sep C]  output into the two-level store
  inspect <DIR> --program NAME      textual histogram and statistics of
        --event ABBR [--run N]      one stored event series
        [--bins B]
  error <benchmark> [--events N]    measure the MLPX error of
        [--seed S]                  ICACHE.MISSES before/after cleaning
  analyze <benchmark> [--events N]  the full pipeline: importance and
        [--runs N] [--trees N]      interaction rankings
        [--seed S] [--store FILE]
        [--trainer exact|hist]      GBRT split search: exact thresholds
                                    or histogram bins (default: hist;
                                    the CM_TRAINER environment variable
                                    also works)
        [--cleaner point|bayes]     reconstruction estimator: point
                                    (default) or bayes, which attaches a
                                    variance to every reconstructed
                                    value and reports confidence
                                    intervals and a ranking-stability
                                    score (the CM_CLEANER environment
                                    variable also works; the cleaner is
                                    part of the snapshot fingerprint)
                                    with --store, collected and cleaned
                                    data persist into the columnar store
                                    FILE; a rerun with the same settings
                                    resumes from it, skipping collection
                                    and cleaning
        [--chaos-seed U64]          dev: inject the seed's deterministic
                                    schedule of I/O faults into the
                                    store (requires --store); reports
                                    the outcome instead of failing —
                                    the run must never panic
  ingest <benchmark> --store FILE   collect and clean a benchmark into
        [--runs N] [--events N]     the columnar store without modeling
        [--seed S]                  (a later analyze --store resumes)
        [--follow] [--chunk N]      with --follow, stream the rows in N
                                    at a time instead: each chunk is an
                                    atomic append and cleaning advances
                                    incrementally; an interrupted follow
                                    resumes from the committed rows
  query <FILE> [--program NAME]     list the programs of a columnar
        [--run N] [--event ABBR]    store, or summarize one stored series
  store-info <FILE> [--json]        columnar store facts: format version,
                                    series/chunk counts, encodings,
                                    file size, metadata; --json emits a
                                    machine-readable object
  serve --store FILE                start the in-process analysis server
        [--benchmark B]             and run a deterministic smoke
        [--requests N]              exercise: ping, store probe, and N
        [--workers N]               identical analyze requests that
                                    coalesce into one computation (the
                                    stats line shows the dedup hits)
  watch <benchmark> --store FILE    subscribe to the benchmark's ranking
        [--top K] [--chunk N]       on the analysis server while its
                                    rows stream in; prints a line only
                                    when the top-K order or the MAPM
                                    materially changes
  load --store FILE                 drive the concurrent serving layer
        --benchmark B               with a seeded mixed workload, once
        [--clients N] [--ops N]     with batching/dedup on and once off,
        [--mode closed|open]        reporting p50/p99/p999 latency and
        [--rate HZ] [--seed S]      throughput for both
        [--warmup-ms N]
        [--cooldown-ms N]
        [--curve 8,16,32]           also sweep client counts and report
                                    the measured saturation point
        [--out BENCH.json]          write the perf_gate-compatible
                                    report
        [--chaos-seeds N]           instead rerun the workload once per
        [--scratch DIR]             fault seed on a private store copy;
                                    fails on any handler panic or torn
                                    store
  cluster [BENCH,BENCH,...]         cluster cleaned counter signatures
        --store FILE [--k N]        across benchmarks (default: all 16)
        [--sigmas X] [--inject N]   with seeded k-medoids and flag
        [--runs N] [--events N]     anomalous runs; --inject adds N
        [--seed S] [--json]         synthetic anomalous runs per
                                    benchmark to verify detection;
                                    --json emits the machine-readable
                                    report
  spark <benchmark> [--seed S]      the Spark-tuning case study
  colocate <benchA> <benchB>        importance ranking of two co-located
        [--events N] [--seed S]     benchmarks sharing the PMU
  help                              this text

GLOBAL OPTIONS:
  --threads N                       worker threads for parallel stages
                                    (default: all cores; the CM_THREADS
                                    environment variable also works)
  --metrics MODE                    pipeline observability: off, summary
                                    (human-readable span/counter report
                                    on stderr), json, or json:PATH
                                    (JSON lines; the CM_OBS environment
                                    variable also works)

ENVIRONMENT:
  CM_STORE_CACHE                    columnar-store block-cache capacity
                                    (e.g. 64M, 1G; 0 disables caching)
  CM_STREAM_BLOCK                   streaming clean block size in rows
                                    (default 64); changing it changes
                                    the stream's config fingerprint
  CM_CLEANER                        default reconstruction estimator
                                    (point or bayes) wherever --cleaner
                                    is not given
";

fn benchmark_by_name(name: &str) -> Result<Benchmark, ArgError> {
    ALL_BENCHMARKS
        .iter()
        .copied()
        .find(|b| b.name().eq_ignore_ascii_case(name) || b.abbrev().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            ArgError(format!(
                "unknown benchmark {name:?}; try one of: {}",
                ALL_BENCHMARKS
                    .iter()
                    .map(|b| b.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })
}

fn required_positional<'a>(args: &'a Args, index: usize, what: &str) -> Result<&'a str, ArgError> {
    args.positional(index)
        .ok_or_else(|| ArgError(format!("missing {what}")))
}

/// `counterminer catalog [--abbrev X]`
pub fn catalog(args: &Args) -> CmdResult {
    let catalog = EventCatalog::haswell();
    match args.get("abbrev") {
        Some(abbrev) => {
            let info = catalog
                .by_abbrev(abbrev)
                .ok_or_else(|| ArgError(format!("no event with abbreviation {abbrev:?}")))?;
            println!("{:<6} {}", info.abbrev(), info.name());
            println!("  {}", info.description());
            println!("  kind: {}, distribution: {}", info.kind(), info.family());
        }
        None => {
            println!("{} events:", catalog.len());
            for info in catalog.iter() {
                println!(
                    "{:<6} {:<52} {:<9} {}",
                    info.abbrev(),
                    info.name(),
                    info.kind().to_string(),
                    info.family()
                );
            }
        }
    }
    Ok(())
}

/// `counterminer benchmarks`
pub fn benchmarks() -> CmdResult {
    println!(
        "{:<20} {:<6} {:<12} {:<28} category",
        "benchmark", "abbr", "suite", "framework"
    );
    for b in ALL_BENCHMARKS {
        println!(
            "{:<20} {:<6} {:<12} {:<28} {}",
            b.to_string(),
            b.abbrev(),
            b.suite().to_string(),
            b.framework(),
            b.category()
        );
    }
    Ok(())
}

/// `counterminer collect <benchmark> --out DIR [...]`
pub fn collect(args: &Args) -> CmdResult {
    let benchmark = benchmark_by_name(required_positional(args, 1, "benchmark name")?)?;
    let out = args
        .get("out")
        .ok_or_else(|| ArgError("--out DIR is required".into()))?;
    let runs: usize = args.get_num("runs", 2)?;
    let n_events: usize = args.get_num("events", 10)?;
    let seed: u64 = args.get_num("seed", 0)?;
    let mode = if args.flag("ocoe") {
        SampleMode::Ocoe
    } else {
        SampleMode::Mlpx
    };

    let catalog = EventCatalog::haswell();
    let workload = Workload::new(benchmark, &catalog);
    let events = workload.top_event_ids(&catalog, n_events);
    let pmu = PmuConfig::default();
    let collected = collector::collect_runs(&workload, &events, mode, runs, &pmu, seed);

    let mut db = Database::new();
    collector::store_runs(&mut db, &collected)?;
    db.save_to_dir(Path::new(out))?;
    println!("collected {runs} {mode} run(s) of {benchmark} measuring {n_events} events -> {out}");
    Ok(())
}

/// `counterminer show <DIR> [--program NAME]`
pub fn show(args: &Args) -> CmdResult {
    let dir = required_positional(args, 1, "store directory")?;
    let db = Database::load_from_dir(Path::new(dir))?;
    let programs = match args.get("program") {
        Some(p) => vec![p.to_string()],
        None => db.programs(),
    };
    println!("store {dir}: {} run(s)", db.run_count());
    for program in programs {
        match db.summary(&program) {
            Some(summary) => {
                println!(
                    "  {program}: {} runs, {} events, exec times {:?}",
                    summary.run_count,
                    summary.events.len(),
                    summary
                        .exec_times_secs
                        .iter()
                        .map(|t| format!("{t:.1}s"))
                        .collect::<Vec<_>>()
                );
                for table in &summary.table_names {
                    println!("    table {table}");
                }
            }
            None => println!("  {program}: not in store"),
        }
    }
    Ok(())
}

/// `counterminer clean <DIR> --out DIR2`
pub fn clean(args: &Args) -> CmdResult {
    let dir = required_positional(args, 1, "store directory")?;
    let out = args
        .get("out")
        .ok_or_else(|| ArgError("--out DIR is required".into()))?;
    let db = Database::load_from_dir(Path::new(dir))?;
    let cleaner = DataCleaner::default();
    let mut cleaned_db = Database::new();
    let mut outliers = 0usize;
    let mut missing = 0usize;
    for (key, run) in db.iter() {
        let mut run = run.clone();
        if key.mode == SampleMode::Mlpx {
            for report in cleaner.clean_run(&mut run)? {
                outliers += report.outliers_replaced;
                missing += report.missing_filled;
            }
        }
        cleaned_db.insert_run(run)?;
    }
    cleaned_db.save_to_dir(Path::new(out))?;
    println!(
        "cleaned {} run(s): {outliers} outliers replaced, {missing} missing values filled -> {out}",
        db.run_count()
    );
    Ok(())
}

/// `counterminer import <FILE> --out DIR [...]`
pub fn import(args: &Args) -> CmdResult {
    let file = required_positional(args, 1, "perf output file")?;
    let out = args
        .get("out")
        .ok_or_else(|| ArgError("--out DIR is required".into()))?;
    let program = args.get("program").unwrap_or("imported");
    let sep = args
        .get("sep")
        .map(|s| s.chars().next().unwrap_or(','))
        .unwrap_or(',');
    let catalog = EventCatalog::haswell();
    let text = std::fs::read_to_string(file)?;
    let report = counterminer::import::parse_perf_stat(&text, sep, program, 0, &catalog)?;
    println!(
        "parsed {} intervals, {} events, {} `<not counted>` samples",
        report.intervals,
        report.run.event_count(),
        report.not_counted
    );
    if !report.unknown_events.is_empty() {
        println!("unmatched event names: {:?}", report.unknown_events);
    }
    let mut db = Database::new();
    db.insert_run(report.run)?;
    db.save_to_dir(Path::new(out))?;
    println!("stored -> {out}");
    Ok(())
}

/// `counterminer inspect <DIR> --program NAME --event ABBR [...]`
pub fn inspect(args: &Args) -> CmdResult {
    let dir = required_positional(args, 1, "store directory")?;
    let program = args
        .get("program")
        .ok_or_else(|| ArgError("--program NAME is required".into()))?;
    let abbrev = args
        .get("event")
        .ok_or_else(|| ArgError("--event ABBR is required".into()))?;
    let run_index: u32 = args.get_num("run", 0)?;
    let bins: usize = args.get_num("bins", 12)?;

    let catalog = EventCatalog::haswell();
    let info = catalog
        .by_abbrev(abbrev)
        .ok_or_else(|| ArgError(format!("no event with abbreviation {abbrev:?}")))?;
    let db = Database::load_from_dir(Path::new(dir))?;
    let run = db
        .run(program, run_index, SampleMode::Mlpx)
        .or_else(|| db.run(program, run_index, SampleMode::Ocoe))
        .ok_or_else(|| ArgError(format!("run {run_index} of {program:?} not in store")))?;
    let series = run
        .series(info.id())
        .ok_or_else(|| ArgError(format!("{abbrev} was not measured in that run")))?;

    println!(
        "{program} run {run_index} ({}) — {} ({})",
        run.mode(),
        info.name(),
        info.description()
    );
    println!(
        "samples {}   min {:.1}   mean {:.1}   max {:.1}   zeros {}",
        series.len(),
        series.min().unwrap_or(0.0),
        series.mean().unwrap_or(0.0),
        series.max().unwrap_or(0.0),
        series.zero_count()
    );
    let (edges, counts) = cm_stats::descriptive::histogram(series.values(), bins)
        .map_err(counterminer::CmError::Stats)?;
    let peak = counts.iter().copied().max().unwrap_or(1).max(1);
    for (i, &count) in counts.iter().enumerate() {
        let bar = "#".repeat(count * 50 / peak);
        println!(
            "[{:>12.1}, {:>12.1})  {count:>5} {bar}",
            edges[i],
            edges[i + 1]
        );
    }
    if let Some(stats) = db.exec_time_stats(program) {
        println!(
            "exec time over {} run(s): min {:.1}s mean {:.1}s max {:.1}s",
            stats.runs, stats.min, stats.mean, stats.max
        );
    }
    Ok(())
}

/// `counterminer error <benchmark> [--events N] [--seed S]`
pub fn error(args: &Args) -> CmdResult {
    let benchmark = benchmark_by_name(required_positional(args, 1, "benchmark name")?)?;
    let n_events: usize = args.get_num("events", 10)?;
    let seed: u64 = args.get_num("seed", 0)?;

    let catalog = EventCatalog::haswell();
    let workload = Workload::new(benchmark, &catalog);
    let icm = catalog
        .by_abbrev(cm_events::abbrev::ICM)
        .expect("ICM in catalog")
        .id();
    let mut events = workload.top_event_ids(&catalog, n_events);
    events.insert(icm);
    let pmu = PmuConfig::default();

    let ocoe1 = pmu.simulate_ocoe(&workload, &events, 0, seed);
    let ocoe2 = pmu.simulate_ocoe(&workload, &events, 1, seed);
    let mlpx = pmu.simulate_mlpx(&workload, &events, 2, seed);
    let s1 = ocoe1.record.series(icm).expect("measured");
    let s2 = ocoe2.record.series(icm).expect("measured");
    let sm = mlpx.record.series(icm).expect("measured");
    let raw = mlpx_error(s1, s2, sm)?;
    let (cleaned, report) = DataCleaner::default().clean_series(sm)?;
    let after = mlpx_error(s1, s2, &cleaned)?;
    println!(
        "{benchmark}: ICACHE.MISSES MLPX error {raw:.1}% raw -> {after:.1}% cleaned \
         ({} outliers, {} missing; {n_events} events on {} counters)",
        report.outliers_replaced, report.missing_filled, pmu.counters
    );
    Ok(())
}

/// Builds the pipeline configuration shared by `analyze` and `ingest`
/// from the common command-line knobs. Both commands must agree on the
/// collection settings for an `ingest` to warm a later `analyze --store`.
fn miner_config(args: &Args) -> Result<MinerConfig, ArgError> {
    let n_events: usize = args.get_num("events", 60)?;
    let runs: usize = args.get_num("runs", 2)?;
    let trees: usize = args.get_num("trees", 80)?;
    let seed: u64 = args.get_num("seed", 0)?;
    let trainer: Trainer = match args.get("trainer") {
        Some(s) => s.parse().map_err(|e| ArgError(format!("{e}")))?,
        None => Trainer::default(),
    };
    let cleaner: CleanerKind = match args.get("cleaner") {
        Some(s) => s.parse().map_err(|e| ArgError(format!("{e}")))?,
        None => CleanerKind::default(),
    };
    Ok(MinerConfig {
        runs_per_benchmark: runs,
        cleaner_kind: cleaner,
        events_to_measure: Some(n_events),
        importance: ImportanceConfig {
            sgbrt: SgbrtConfig {
                n_trees: trees,
                trainer,
                ..SgbrtConfig::default()
            },
            seed,
            ..ImportanceConfig::default()
        },
        seed,
        ..MinerConfig::default()
    })
}

/// `counterminer analyze <benchmark> [...]`
pub fn analyze(args: &Args) -> CmdResult {
    let benchmark = benchmark_by_name(required_positional(args, 1, "benchmark name")?)?;
    let chaos_seed: Option<u64> = match args.get("chaos-seed") {
        None => None,
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| ArgError(format!("--chaos-seed needs a u64, got {raw:?}")))?,
        ),
    };
    let mut miner = CounterMiner::new(miner_config(args)?);
    let report = match (args.get("store"), chaos_seed) {
        (None, Some(_)) => {
            return Err(ArgError("--chaos-seed requires --store FILE".into()).into());
        }
        (Some(path), Some(seed)) => {
            // Dev harness: run the store-backed pipeline with the
            // seed's fault schedule injected into every store I/O.
            // Both outcomes are expected — completion or a typed
            // error — so the command reports instead of failing; a
            // panic is the only wrong answer.
            let fs = std::sync::Arc::new(cm_chaos::FaultFs::new(seed));
            let outcome = (|| -> Result<_, Box<dyn Error>> {
                let mut store = Store::open_with_vfs(
                    Path::new(path),
                    cm_store::CacheConfig::from_env(),
                    fs.clone(),
                )?;
                Ok(miner.analyze_with_store(benchmark, &mut store)?)
            })();
            match outcome {
                Ok(report) => {
                    println!(
                        "chaos seed {seed}: {} fault(s) injected, pipeline completed",
                        fs.injected()
                    );
                    report
                }
                Err(e) => {
                    println!(
                        "chaos seed {seed}: {} fault(s) injected, typed failure: {e}",
                        fs.injected()
                    );
                    return Ok(());
                }
            }
        }
        (Some(path), None) => {
            let mut store = Store::open(Path::new(path))?;
            let report = miner.analyze_with_store(benchmark, &mut store)?;
            let info = store.info();
            println!(
                "store {path}: {} series, {} bytes on disk",
                info.series, info.file_bytes
            );
            report
        }
        (None, None) => miner.analyze(benchmark)?,
    };

    println!(
        "{benchmark}: cleaned {} outliers, filled {} missing values ({} cleaner)",
        report.outliers_replaced, report.missing_filled, report.cleaner
    );
    println!(
        "MAPM: {} events, {:.1}% held-out error",
        report.eir.mapm_events.len(),
        report.eir.best_error() * 100.0
    );
    println!("EIR curve:");
    print!("{}", counterminer::report::render_eir_curve(&report.eir));
    println!("top events:");
    print!(
        "{}",
        counterminer::report::render_importance(miner.catalog(), &report.eir, 10)
    );
    if let Some(uncertainty) = &report.eir.uncertainty {
        println!(
            "ranking stability (top-{}): {:.3} — probability the order above \
             survives resampling from the posteriors",
            uncertainty.top_k, uncertainty.stability
        );
        if let Some(intervals) = report.eir.confidence_intervals(0.95) {
            println!("95% confidence intervals on importance:");
            for (event, lo, hi) in intervals.iter().take(5) {
                println!(
                    "  {:<6} [{:5.1}%, {:5.1}%]",
                    miner.catalog().info(*event).abbrev(),
                    lo.max(0.0),
                    hi
                );
            }
        }
    }
    println!("top interaction pairs:");
    print!(
        "{}",
        counterminer::report::render_interactions(miner.catalog(), &report.interactions, 5)
    );
    Ok(())
}

/// `counterminer ingest <benchmark> --store FILE [--follow] [...]`
pub fn ingest(args: &Args) -> CmdResult {
    let benchmark = benchmark_by_name(required_positional(args, 1, "benchmark name")?)?;
    let path = args
        .get("store")
        .ok_or_else(|| ArgError("--store FILE is required".into()))?;
    if args.flag("follow") {
        return ingest_follow(args, benchmark, path);
    }
    let miner = CounterMiner::new(miner_config(args)?);
    let mut store = Store::open(Path::new(path))?;
    let summary = miner.ingest(benchmark, &mut store)?;
    if summary.resumed {
        println!(
            "{benchmark}: snapshot already in {path} ({} runs, {} events) — nothing to do",
            summary.runs, summary.events
        );
    } else {
        println!(
            "{benchmark}: collected {} run(s) of {} events, cleaned {} outliers and {} \
             missing values -> {path}",
            summary.runs, summary.events, summary.outliers_replaced, summary.missing_filled
        );
    }
    Ok(())
}

/// `counterminer ingest <benchmark> --store FILE --follow [--chunk N]`
///
/// Streaming ingest: rows arrive in chunks, each chunk appended and
/// committed atomically, with cleaning advancing incrementally (sealed
/// blocks are cleaned exactly once). A killed and restarted follow
/// resumes from the committed row count — re-running the command after
/// an interruption continues where the store left off.
fn ingest_follow(args: &Args, benchmark: Benchmark, path: &str) -> CmdResult {
    let chunk: usize = args.get_num("chunk", 32)?;
    if chunk == 0 {
        return Err(ArgError("--chunk must be at least 1".into()).into());
    }
    let config = cm_stream::StreamConfig::from_env(miner_config(args)?);
    let block = config.block;
    let mut store = Store::open(Path::new(path))?;
    let mut session = cm_stream::StreamSession::open(&mut store, benchmark, config)?;
    if session.total_rows() > 0 {
        println!(
            "{benchmark}: resuming at row {} of {} ({} sealed)",
            session.total_rows(),
            session.source_rows(),
            session.sealed_rows()
        );
    }
    let mut appends = 0usize;
    loop {
        let report = session.append(&mut store, chunk)?;
        if report.appended_rows > 0 {
            appends += 1;
            println!(
                "  +{:<4} rows -> {:>4}/{} total, {:>4} sealed, {:>3} recleaned",
                report.appended_rows,
                report.total_rows,
                session.source_rows(),
                report.sealed_rows,
                report.recleaned_rows
            );
        }
        if report.exhausted {
            break;
        }
    }
    println!(
        "{benchmark}: {} append(s) of up to {chunk} row(s), block size {block}; \
         {} outliers replaced, {} missing values filled -> {path}",
        appends,
        session.outliers_replaced(),
        session.missing_filled()
    );
    println!("(a later `analyze --store {path}` or `watch` picks this up)");
    Ok(())
}

/// `counterminer query <FILE> [--program NAME] [--run N] [--event ABBR]`
pub fn query(args: &Args) -> CmdResult {
    let path = required_positional(args, 1, "store file")?;
    let store = Store::open(Path::new(path))?;
    let Some(program) = args.get("program") else {
        // No program: list what the store holds.
        println!("store {path}: {} series", store.series_count());
        for program in store.programs() {
            let series = store.series_keys().filter(|k| k.program == program).count();
            let runs: std::collections::BTreeSet<u32> = store
                .series_keys()
                .filter(|k| k.program == program)
                .map(|k| k.run_index)
                .collect();
            println!("  {program}: {series} series across {} run(s)", runs.len());
        }
        return Ok(());
    };
    let abbrev = args
        .get("event")
        .ok_or_else(|| ArgError("--event ABBR is required with --program".into()))?;
    let run_index: u32 = args.get_num("run", 0)?;
    let catalog = EventCatalog::haswell();
    let info = catalog
        .by_abbrev(abbrev)
        .ok_or_else(|| ArgError(format!("no event with abbreviation {abbrev:?}")))?;
    let series = [SampleMode::Mlpx, SampleMode::Ocoe]
        .iter()
        .find_map(|&mode| {
            store
                .read_series_ts(&SeriesKey::new(program, run_index, mode, info.id()))
                .ok()
        })
        .ok_or_else(|| {
            ArgError(format!(
                "no series for {abbrev} in run {run_index} of {program:?}"
            ))
        })?;
    println!(
        "{program} run {run_index} — {} ({} samples)",
        info.name(),
        series.len()
    );
    println!(
        "min {:.1}   mean {:.1}   max {:.1}   zeros {}",
        series.min().unwrap_or(0.0),
        series.mean().unwrap_or(0.0),
        series.max().unwrap_or(0.0),
        series.zero_count()
    );
    Ok(())
}

/// `counterminer store-info <FILE> [--json]`
pub fn store_info(args: &Args) -> CmdResult {
    let path = required_positional(args, 1, "store file")?;
    let store = Store::open(Path::new(path))?;
    let info = store.info();
    // Snapshot cleaner kinds: which estimator reconstructed each
    // persisted benchmark snapshot (the fingerprint covers it, so a
    // resume under the other cleaner is a miss).
    let cleaners: Vec<(&str, String)> = ALL_BENCHMARKS
        .iter()
        .filter_map(|b| {
            store
                .meta(&format!("snapshot.{}.cleaner", b.name()))
                .map(|kind| (b.name(), kind.to_string()))
        })
        .collect();
    if args.flag("json") {
        println!("{{");
        println!(
            "  \"path\": \"{}\",",
            path.replace('\\', "\\\\").replace('"', "\\\"")
        );
        println!("  \"version\": {},", info.version);
        println!("  \"series\": {},", info.series);
        println!("  \"staged\": {},", info.staged);
        println!("  \"runs\": {},", info.runs);
        println!("  \"meta_entries\": {},", info.meta_entries);
        let kinds = cleaners
            .iter()
            .map(|(name, kind)| format!("\"{name}\": \"{kind}\""))
            .collect::<Vec<_>>()
            .join(", ");
        println!("  \"cleaners\": {{{kinds}}},");
        println!("  \"total_values\": {},", info.total_values);
        println!("  \"file_bytes\": {},", info.file_bytes);
        println!("  \"delta_chunks\": {},", info.delta_chunks);
        println!("  \"raw_chunks\": {}", info.raw_chunks);
        println!("}}");
        return Ok(());
    }
    println!("store {path}");
    println!("  format version  {}", info.version);
    println!("  series          {} ({} staged)", info.series, info.staged);
    println!("  runs            {}", info.runs);
    println!("  sample values   {}", info.total_values);
    println!("  file size       {} bytes", info.file_bytes);
    println!(
        "  chunks          {} delta+varint, {} raw f64",
        info.delta_chunks, info.raw_chunks
    );
    if info.meta_entries > 0 {
        println!("  metadata        {} entries", info.meta_entries);
    }
    for (name, kind) in &cleaners {
        println!("  snapshot        {name} cleaned by the {kind} estimator");
    }
    Ok(())
}

/// `counterminer serve --store FILE [--benchmark B] [...]`
///
/// Starts the in-process analysis server on a store and runs a
/// deterministic smoke exercise against it: a ping, a store probe, and
/// `--requests` *identical* analyze requests enqueued before the
/// scheduler starts, so they land in one batch and deduplicate into a
/// single computation. The final stats line shows the dedup hits.
pub fn serve(args: &Args) -> CmdResult {
    let path = args
        .get("store")
        .ok_or_else(|| ArgError("--store FILE is required".into()))?;
    let requests: usize = args.get_num("requests", 8)?;
    let config = ServeConfig {
        miner: miner_config(args)?,
        workers: args.get_num("workers", 0)?,
        ..ServeConfig::default()
    };
    let mut server = Server::new(config);
    server.add_store("main", Path::new(path))?;
    let client = server.client();

    let ping = client.submit(Request::Ping);
    let info = client.submit(Request::Info {
        store: "main".into(),
    });
    let analyzes: Vec<Pending> = match args.get("benchmark") {
        Some(name) => {
            let benchmark = benchmark_by_name(name)?;
            (0..requests)
                .map(|_| {
                    client.submit(Request::Analyze {
                        store: "main".into(),
                        benchmark,
                    })
                })
                .collect()
        }
        None => Vec::new(),
    };

    let handle = server.start();
    ping.wait()?;
    if let Response::Info(i) = info.wait()? {
        println!(
            "store main: format v{}, {} series, {} bytes on disk",
            i.version, i.series, i.file_bytes
        );
    }
    let mut analysis = None;
    for pending in analyzes {
        if let Response::Analysis(a) = pending.wait()? {
            analysis = Some(a);
        }
    }
    if let Some(a) = analysis {
        let catalog = EventCatalog::haswell();
        println!(
            "{}: {} ranked events, {:.1}% held-out error (snapshot fingerprint {:016x})",
            a.benchmark,
            a.ranking.len(),
            a.best_error * 100.0,
            a.fingerprint
        );
        for (event, share) in a.ranking.iter().take(5) {
            println!("  {:<6} {share:5.1}%", catalog.info(*event).abbrev());
        }
    }
    let cache = handle.cache_stats();
    let stats = handle.shutdown();
    println!(
        "cache: {} hits, {} misses, {} entries resident",
        cache.hits, cache.misses, cache.entries
    );
    println!(
        "serve stats: {} requests, {} errors, {} batch flushes, {} coalesced reads, {} dedup hits",
        stats.requests, stats.errors, stats.batch_flushes, stats.batch_coalesced, stats.dedup_hits
    );
    Ok(())
}

/// `counterminer watch <benchmark> --store FILE [--top K] [--chunk N]`
///
/// Live-subscription demo: starts the in-process analysis server on the
/// store, subscribes to the benchmark's ranking, then streams the
/// benchmark's rows in through `StreamAppend` requests. The client is
/// notified only when the answer *materially* changes — the top-K order
/// shifts or the MAPM moves — so most appends print nothing.
pub fn watch(args: &Args) -> CmdResult {
    let benchmark = benchmark_by_name(required_positional(args, 1, "benchmark name")?)?;
    let path = args
        .get("store")
        .ok_or_else(|| ArgError("--store FILE is required".into()))?;
    let top_k: usize = args.get_num("top", 5)?;
    let chunk: usize = args.get_num("chunk", 32)?;
    if chunk == 0 {
        return Err(ArgError("--chunk must be at least 1".into()).into());
    }
    let config = ServeConfig {
        miner: miner_config(args)?,
        workers: args.get_num("workers", 0)?,
        ..ServeConfig::default()
    };
    let mut server = Server::new(config);
    server.add_store("main", Path::new(path))?;
    let client = server.client();
    let handle = server.start();
    let catalog = EventCatalog::haswell();

    let result = (|| -> CmdResult {
        let mut sub = client.subscribe("main", benchmark, top_k)?;
        let mut appends = 0usize;
        let mut notified = 0usize;
        loop {
            let response = client
                .submit(Request::StreamAppend {
                    store: "main".into(),
                    benchmark,
                    rows: chunk,
                })
                .wait()?;
            let report = match response {
                Response::Appended(report) => report,
                other => return Err(format!("unexpected response: {other:?}").into()),
            };
            if report.appended_rows > 0 {
                appends += 1;
            }
            for note in sub.poll()? {
                notified += 1;
                let events: Vec<&str> = note
                    .summary
                    .top_events()
                    .iter()
                    .map(|&e| catalog.info(e).abbrev())
                    .collect();
                println!(
                    "#{:<3} row {:>4}  {:<12}  top [{}]  MAPM {} events, {:.1}% error",
                    note.seq,
                    note.sealed_rows,
                    format!("{:?}", note.reason),
                    events.join(" "),
                    note.summary.mapm_events.len(),
                    note.summary.best_error * 100.0
                );
            }
            if report.exhausted {
                break;
            }
        }
        println!(
            "{benchmark}: {appends} append(s) of up to {chunk} row(s), {notified} \
             notification(s) — silent appends left the ranking unchanged"
        );
        Ok(())
    })();
    handle.shutdown();
    result
}

fn print_load_run(name: &str, m: &RunMetrics) {
    let l = &m.latency;
    println!(
        "{name:<10} {:>9.0} ops/s   p50 {:>7} us  p99 {:>7} us  p999 {:>7} us  max {:>7} us   \
         ({} dedup hits, {} coalesced reads, {} errors)",
        m.throughput_ops_per_sec,
        l.p50_ns / 1_000,
        l.p99_ns / 1_000,
        l.p999_ns / 1_000,
        l.max_ns / 1_000,
        m.stats.dedup_hits,
        m.stats.batch_coalesced,
        m.errors,
    );
}

/// `counterminer load --store FILE --benchmark B [...]`
///
/// Warms the store, then drives the serving layer with a seeded mixed
/// workload twice — batching/dedup on, then off — and reports latency
/// percentiles and throughput for both. `--out` writes the
/// `BENCH_serve_*.json` report the `perf_gate` binary understands;
/// `--chaos-seeds N` instead reruns the workload once per fault seed on
/// a private store copy and fails on any handler panic or torn store.
pub fn load(args: &Args) -> CmdResult {
    let path = args
        .get("store")
        .ok_or_else(|| ArgError("--store FILE is required".into()))?;
    let benchmark = benchmark_by_name(
        args.get("benchmark")
            .ok_or_else(|| ArgError("--benchmark NAME is required".into()))?,
    )?;
    let config = miner_config(args)?;
    let clients: usize = args.get_num("clients", 64)?;
    let ops: usize = args.get_num("ops", 16)?;
    let load_seed: u64 = args.get_num("seed", 0)?;
    let workers: usize = args.get_num("workers", 0)?;
    let warmup_ms: u64 = args.get_num("warmup-ms", 0)?;
    let cooldown_ms: u64 = args.get_num("cooldown-ms", 0)?;
    let mode = match args.get("mode").unwrap_or("closed") {
        "closed" => LoopMode::Closed,
        "open" => LoopMode::Open {
            rate_hz: args.get_num("rate", 50.0)?,
        },
        other => {
            return Err(ArgError(format!("--mode must be closed or open, not {other:?}")).into());
        }
    };
    let workload = LoadWorkload {
        clients,
        ops_per_client: ops,
        mode,
        seed: load_seed,
        warmup: Duration::from_millis(warmup_ms),
        cooldown: Duration::from_millis(cooldown_ms),
        ..LoadWorkload::default()
    };

    println!("warming {path} with {benchmark} ...");
    let keys = prepare_store(Path::new(path), benchmark, &config)?;
    println!("  {} series available to the query mix", keys.len());

    if let Some(raw) = args.get("chaos-seeds") {
        let seeds: u64 = raw
            .parse()
            .map_err(|_| ArgError(format!("--chaos-seeds needs a count, got {raw:?}")))?;
        let scratch = match args.get("scratch") {
            Some(dir) => std::path::PathBuf::from(dir),
            None => std::env::temp_dir().join(format!("cm_load_chaos_{}", std::process::id())),
        };
        let sc = ServeConfig {
            miner: config,
            workers,
            ..ServeConfig::default()
        };
        let report = chaos_sweep(
            Path::new(path),
            &scratch,
            benchmark,
            &sc,
            &workload,
            &keys,
            0..seeds,
        )?;
        let _ = std::fs::remove_dir_all(&scratch);
        println!(
            "chaos sweep over {seeds} seed(s): {} faults injected, {} requests, {} typed errors",
            report.total_faults(),
            report.total_ops(),
            report.total_typed_errors()
        );
        if report.handler_panics() > 0 || report.torn_stores() > 0 {
            return Err(format!(
                "chaos sweep failed: {} handler panic(s), {} torn store(s)",
                report.handler_panics(),
                report.torn_stores()
            )
            .into());
        }
        println!("every failure was typed; every store reopened intact");
        return Ok(());
    }

    let start_server = |batching: bool| -> Result<ServerHandle, Box<dyn Error>> {
        let sc = ServeConfig {
            miner: config,
            workers,
            batching,
            ..ServeConfig::default()
        };
        let mut server = Server::new(sc);
        server.add_store("main", Path::new(path))?;
        Ok(server.start())
    };
    let mode_id = match workload.mode {
        LoopMode::Closed => "closed",
        LoopMode::Open { .. } => "open",
    };
    let mut report = LoadReport::new(
        format!(
            "cm-load {mode_id}-loop mixed workload: {clients} clients x {ops} ops, seed \
             {load_seed}; batched vs unbatched on the same store"
        ),
        benchmark.name(),
    );

    let handle = start_server(true)?;
    let batched = run_workload(&handle, "main", benchmark, &keys, &workload, "batched");
    if let Some(curve) = args.get("curve") {
        let counts = curve
            .split(',')
            .map(|s| s.trim().parse::<usize>())
            .collect::<Result<Vec<usize>, _>>()
            .map_err(|_| {
                ArgError(format!(
                    "--curve needs comma-separated counts, got {curve:?}"
                ))
            })?;
        let (runs, saturation) = saturation_sweep(
            &handle, "main", benchmark, &keys, &workload, &counts, "curve",
        );
        for r in &runs {
            println!(
                "  curve: {:>4} clients -> {:>9.0} ops/s",
                r.clients, r.throughput_ops_per_sec
            );
        }
        report.runs.extend(runs);
        report.saturation_clients = saturation;
        match saturation {
            Some(c) => println!("saturation at {c} clients"),
            None => println!("throughput still scaling at the last sweep point"),
        }
    }
    handle.shutdown();

    let handle = start_server(false)?;
    let unbatched = run_workload(&handle, "main", benchmark, &keys, &workload, "unbatched");
    handle.shutdown();

    print_load_run("batched", &batched);
    print_load_run("unbatched", &unbatched);
    if unbatched.throughput_ops_per_sec > 0.0 {
        println!(
            "batching speedup: {:.2}x",
            batched.throughput_ops_per_sec / unbatched.throughput_ops_per_sec
        );
    }
    report.register_throughput(
        &format!("serve/{mode_id}/throughput"),
        batched.throughput_ops_per_sec,
    );
    report.add_run(&format!("serve/{mode_id}/mixed/batched"), batched);
    report.add_run(&format!("serve/{mode_id}/mixed/unbatched"), unbatched);
    if let Some(out) = args.get("out") {
        report.write(Path::new(out))?;
        println!("report -> {out}");
    }
    Ok(())
}

/// `counterminer cluster [BENCH,...] --store FILE [...]`
///
/// The cross-benchmark `cluster` analysis mode: ingests every listed
/// benchmark into the store (warm snapshots are reused), builds cleaned
/// counter signatures, clusters them with seeded k-medoids, and flags
/// runs beyond their cluster's calibrated anomaly threshold. Output is
/// bit-identical at any `--threads`.
pub fn cluster(args: &Args) -> CmdResult {
    let benchmarks: Vec<Benchmark> = match args.positional(1) {
        Some(list) => list
            .split(',')
            .map(|name| benchmark_by_name(name.trim()))
            .collect::<Result<_, _>>()?,
        None => ALL_BENCHMARKS.to_vec(),
    };
    let path = args
        .get("store")
        .ok_or_else(|| ArgError("--store FILE is required".into()))?;
    let cfg = ClusterConfig {
        k: args.get_num("k", ClusterConfig::default().k)?,
        threshold_sigmas: args.get_num("sigmas", ClusterConfig::default().threshold_sigmas)?,
        inject_anomalies: args.get_num("inject", 0)?,
    };
    let miner = CounterMiner::new(miner_config(args)?);
    let mut store = Store::open(Path::new(path))?;
    let report = miner.analyze_cluster(&benchmarks, &mut store, &cfg)?;

    if args.flag("json") {
        println!("{{");
        println!("  \"k\": {},", report.k);
        println!("  \"mean_silhouette\": {},", report.mean_silhouette);
        println!(
            "  \"thresholds\": [{}],",
            report
                .thresholds
                .iter()
                .map(|t| if t.is_finite() {
                    t.to_string()
                } else {
                    "null".into()
                })
                .collect::<Vec<_>>()
                .join(", ")
        );
        println!("  \"anomalies\": {},", report.anomaly_count());
        println!("  \"runs\": [");
        for (i, r) in report.runs.iter().enumerate() {
            let comma = if i + 1 < report.runs.len() { "," } else { "" };
            println!(
                "    {{\"benchmark\": \"{}\", \"run\": {}, \"cluster\": {}, \
                 \"distance\": {}, \"injected\": {}, \"anomalous\": {}}}{comma}",
                r.benchmark, r.run_index, r.cluster, r.medoid_distance, r.injected, r.anomalous
            );
        }
        println!("  ]");
        println!("}}");
    } else {
        print!("{report}");
    }
    Ok(())
}

/// `counterminer spark <benchmark> [--seed S]`
pub fn spark(args: &Args) -> CmdResult {
    let benchmark = benchmark_by_name(required_positional(args, 1, "benchmark name")?)?;
    let seed: u64 = args.get_num("seed", 0)?;
    let catalog = EventCatalog::haswell();
    let study = SparkStudy::new(benchmark, &catalog);

    println!("(parameter, event) interaction ranking for {benchmark}:");
    let ranked = rank_param_event_interactions(&study, &catalog, 6, seed)?;
    for (param, event, share) in ranked.iter().take(5) {
        println!(
            "  {:<4} ({:<40}) <-> {:<4} {share:5.1}%",
            param.abbrev(),
            param.spark_name(),
            event
        );
    }
    let dominant = ranked[0].0;
    let weak = SparkParam::NetworkTimeout;
    println!("\nsweeps:");
    for param in [dominant, weak] {
        let sweep = sweep_parameter(&study, param, 8, seed)?;
        print!("  {:<4}", param.abbrev());
        for (label, secs) in &sweep.points {
            print!("  {label}={secs:.0}s");
        }
        println!("   variation {:.1}%", sweep.variation_percent());
    }
    let cost = ProfilingCostModel::default();
    println!(
        "\nprofiling cost at 90% accuracy: method B {} runs vs method A {} runs ({:.1}x)",
        cost.method_b_runs(0.9),
        cost.method_a_runs(0.9),
        cost.speedup(0.9)
    );
    Ok(())
}

/// `counterminer colocate <benchA> <benchB> [...]`
pub fn colocate(args: &Args) -> CmdResult {
    let a = benchmark_by_name(required_positional(args, 1, "first benchmark")?)?;
    let b = benchmark_by_name(required_positional(args, 2, "second benchmark")?)?;
    let n_events: usize = args.get_num("events", 60)?;
    let seed: u64 = args.get_num("seed", 0)?;

    let catalog = EventCatalog::haswell();
    let pair = cm_sim::ColocatedWorkload::new(a, b, &catalog);
    let pmu = PmuConfig::default();

    // Both solo profiles + the L2 family + filler.
    let mut events = cm_events::EventSet::new();
    for bench in [a, b] {
        for abbrev in bench.importance_profile() {
            events.insert(catalog.by_abbrev(abbrev).expect("profile event").id());
        }
    }
    for abbrev in ["L2H", "L2R", "L2C", "L2A", "L2M", "L2S", "BRE"] {
        events.insert(catalog.by_abbrev(abbrev).expect("named event").id());
    }
    for info in catalog.iter() {
        if events.len() >= n_events {
            break;
        }
        events.insert(info.id());
    }

    let runs: Vec<_> = (0..2)
        .map(|i| {
            let truth = pair.generate_run(i, seed);
            pmu.measure_mlpx(&pair, &truth, &events, i, seed)
        })
        .collect();
    let ids: Vec<cm_events::EventId> = events.iter().collect();
    let cleaner = DataCleaner::default();
    let data = collector::build_dataset(&runs, &ids, Some(&cleaner))?;
    let data = collector::normalize_columns(&data)?;
    let eir = counterminer::ImportanceRanker::new(ImportanceConfig {
        sgbrt: SgbrtConfig {
            n_trees: 80,
            ..SgbrtConfig::default()
        },
        min_events: 20,
        ..ImportanceConfig::default()
    })
    .rank(&data, &ids)?;

    println!("{} — top events:", pair.name());
    print!(
        "{}",
        counterminer::report::render_importance(&catalog, &eir, 10)
    );
    let l2 = eir
        .top(10)
        .iter()
        .filter(|&&(e, _)| catalog.info(e).is_l2_related())
        .count();
    println!("{l2} L2 events in the top 10");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_lookup_accepts_names_and_abbrevs() {
        assert_eq!(benchmark_by_name("sort").unwrap(), Benchmark::Sort);
        assert_eq!(benchmark_by_name("SOT").unwrap(), Benchmark::Sort);
        assert_eq!(
            benchmark_by_name("webserving").unwrap(),
            Benchmark::WebServing
        );
        assert!(benchmark_by_name("nope").is_err());
    }

    #[test]
    fn commands_reject_missing_arguments() {
        let parse = |tokens: &[&str]| {
            crate::args::Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
        };
        // collect without --out.
        assert!(collect(&parse(&["collect", "sort"])).is_err());
        // collect of an unknown benchmark.
        assert!(collect(&parse(&["collect", "nope", "--out", "/tmp/x"])).is_err());
        // error without a benchmark.
        assert!(error(&parse(&["error"])).is_err());
        // show of a missing directory.
        assert!(show(&parse(&["show", "/definitely/not/here"])).is_err());
        // clean without --out.
        assert!(clean(&parse(&["clean", "/tmp"])).is_err());
        // colocate with one benchmark missing.
        assert!(colocate(&parse(&["colocate", "sort"])).is_err());
        // inspect without options.
        assert!(inspect(&parse(&["inspect", "/tmp"])).is_err());
        // import without --out or a missing file.
        assert!(import(&parse(&["import", "/no/such/file"])).is_err());
        // ingest without --store.
        assert!(ingest(&parse(&["ingest", "sort"])).is_err());
        // ingest of an unknown benchmark.
        assert!(ingest(&parse(&["ingest", "nope", "--store", "/tmp/x.cmstore"])).is_err());
        // watch without --store, then with a zero chunk.
        assert!(watch(&parse(&["watch", "sort"])).is_err());
        assert!(watch(&parse(&[
            "watch",
            "sort",
            "--store",
            "/tmp/x.cmstore",
            "--chunk",
            "0",
        ]))
        .is_err());
        // follow-mode ingest with a zero chunk (rejected before I/O).
        assert!(ingest(&parse(&[
            "ingest",
            "sort",
            "--store",
            "/tmp/x.cmstore",
            "--follow",
            "--chunk",
            "0",
        ]))
        .is_err());
        // cluster without --store, then with an unknown benchmark.
        assert!(cluster(&parse(&["cluster", "sort,wordcount"])).is_err());
        assert!(cluster(&parse(&["cluster", "nope", "--store", "/tmp/x.cmstore"])).is_err());
        // query without a store file.
        assert!(query(&parse(&["query"])).is_err());
        // query with --program but no --event.
        assert!(query(&parse(&["query", "/tmp/x", "--program", "wc"])).is_err());
        // store-info without a store file.
        assert!(store_info(&parse(&["store-info"])).is_err());
        // serve without --store.
        assert!(serve(&parse(&["serve"])).is_err());
        // load without --store, then without --benchmark.
        assert!(load(&parse(&["load"])).is_err());
        assert!(load(&parse(&["load", "--store", "/tmp/x.cmstore"])).is_err());
        // load with an unknown loop mode (rejected before any I/O).
        assert!(load(&parse(&[
            "load",
            "--store",
            "/tmp/x.cmstore",
            "--benchmark",
            "sort",
            "--mode",
            "sideways",
        ]))
        .is_err());
    }

    #[test]
    fn store_info_and_query_reject_non_store_files() {
        let dir = std::env::temp_dir().join(format!("cm_cli_store_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bogus.cmstore");
        std::fs::write(&path, b"this is not a columnar store").unwrap();
        let parse = |tokens: &[&str]| {
            crate::args::Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
        };
        let p = path.to_string_lossy().into_owned();
        assert!(store_info(&parse(&["store-info", &p])).is_err());
        assert!(query(&parse(&["query", &p])).is_err());
    }

    #[test]
    fn usage_mentions_every_command() {
        for cmd in [
            "catalog",
            "benchmarks",
            "collect",
            "show",
            "clean",
            "import",
            "inspect",
            "error",
            "analyze",
            "ingest",
            "query",
            "store-info",
            "serve",
            "watch",
            "load",
            "cluster",
            "spark",
            "colocate",
        ] {
            assert!(USAGE.contains(cmd), "usage missing {cmd}");
        }
        assert!(USAGE.contains("--follow"), "usage missing --follow");
        assert!(USAGE.contains("--chunk"), "usage missing --chunk");
        assert!(
            USAGE.contains("CM_STREAM_BLOCK"),
            "usage missing CM_STREAM_BLOCK"
        );
        assert!(USAGE.contains("--json"), "usage missing --json");
        assert!(USAGE.contains("--clients"), "usage missing --clients");
        assert!(
            USAGE.contains("--chaos-seeds"),
            "usage missing --chaos-seeds"
        );
        assert!(USAGE.contains("--threads"), "usage missing --threads");
        assert!(USAGE.contains("--trainer"), "usage missing --trainer");
        assert!(USAGE.contains("--metrics"), "usage missing --metrics");
        assert!(USAGE.contains("--cleaner"), "usage missing --cleaner");
        assert!(USAGE.contains("CM_CLEANER"), "usage missing CM_CLEANER");
        assert!(USAGE.contains("--store"), "usage missing --store");
        assert!(USAGE.contains("--chaos-seed"), "usage missing --chaos-seed");
        assert!(USAGE.contains("CM_OBS"), "usage missing CM_OBS");
        assert!(
            USAGE.contains("CM_STORE_CACHE"),
            "usage missing CM_STORE_CACHE"
        );
    }

    #[test]
    fn chaos_seed_without_store_is_rejected() {
        let parse = |tokens: &[&str]| {
            crate::args::Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
        };
        let err = analyze(&parse(&["analyze", "sort", "--chaos-seed", "7"]))
            .unwrap_err()
            .to_string();
        assert!(err.contains("--store"), "unexpected error: {err}");
        // And a non-numeric seed is a parse error, not a panic.
        let err = analyze(&parse(&[
            "analyze",
            "sort",
            "--chaos-seed",
            "banana",
            "--store",
            "/tmp/x.cmstore",
        ]))
        .unwrap_err()
        .to_string();
        assert!(err.contains("u64"), "unexpected error: {err}");
    }

    #[test]
    fn analyze_rejects_unknown_cleaner() {
        let args = crate::args::Args::parse(
            ["analyze", "sort", "--cleaner", "oracle"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        let err = analyze(&args).unwrap_err().to_string();
        assert!(err.contains("point"), "unexpected error: {err}");
        assert!(err.contains("bayes"), "unexpected error: {err}");
    }

    #[test]
    fn analyze_rejects_unknown_trainer() {
        let args = crate::args::Args::parse(
            ["analyze", "sort", "--trainer", "warp"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        let err = analyze(&args).unwrap_err().to_string();
        assert!(err.contains("exact"), "unexpected error: {err}");
    }
}
