//! `counterminer` — command-line interface to the CounterMiner pipeline.
//!
//! Run `counterminer help` for usage. Everything operates on the
//! simulated Haswell-E PMU and the two-level text store; see the
//! repository README for the library API.

mod args;
mod commands;

use args::Args;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Args::parse(raw) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::USAGE);
            std::process::exit(2);
        }
    };

    if parsed.positional_count() > 3 {
        eprintln!("note: extra positional arguments are ignored");
    }
    // Global `--threads N` caps the worker pool for every parallel
    // stage; 0 (the default) keeps the CM_THREADS / all-cores default.
    match parsed.get_num("threads", 0usize) {
        Ok(n) => cm_par::set_max_threads(n),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
    // Global `--metrics <off|summary|json[:PATH]>` overrides the CM_OBS
    // environment variable; unset, CM_OBS (or off) applies lazily.
    if let Some(metrics) = parsed.get("metrics") {
        match cm_obs::parse_mode(metrics) {
            Ok(mode) => cm_obs::set_mode(mode),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }
    let command = parsed.positional(0).unwrap_or("help").to_string();
    let result = match command.as_str() {
        "catalog" => commands::catalog(&parsed),
        "benchmarks" => commands::benchmarks(),
        "collect" => commands::collect(&parsed),
        "show" => commands::show(&parsed),
        "clean" => commands::clean(&parsed),
        "import" => commands::import(&parsed),
        "inspect" => commands::inspect(&parsed),
        "error" => commands::error(&parsed),
        "analyze" => commands::analyze(&parsed),
        "ingest" => commands::ingest(&parsed),
        "query" => commands::query(&parsed),
        "store-info" => commands::store_info(&parsed),
        "serve" => commands::serve(&parsed),
        "watch" => commands::watch(&parsed),
        "load" => commands::load(&parsed),
        "cluster" => commands::cluster(&parsed),
        "spark" => commands::spark(&parsed),
        "colocate" => commands::colocate(&parsed),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => {
            eprintln!("error: unknown command {other:?}");
            eprintln!("{}", commands::USAGE);
            std::process::exit(2);
        }
    };

    // Emit collected metrics (if any mode is active) even when the
    // command failed — a partial trace is exactly what debugging wants.
    cm_obs::report::report();

    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
