use crate::process::{ProcessParams, ProcessState};
use crate::truth::TrueModel;
use crate::Benchmark;
use cm_events::{EventCatalog, EventId, EventSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A benchmark instantiated against an event catalog: the ground-truth
/// performance model plus one activity process per catalog event.
///
/// A `Workload` is immutable; runs are generated from it deterministically
/// per `(run_index, seed)`.
///
/// # Examples
///
/// ```
/// use cm_events::EventCatalog;
/// use cm_sim::{Benchmark, Workload};
///
/// let catalog = EventCatalog::haswell();
/// let w = Workload::new(Benchmark::Sort, &catalog);
/// let run = w.generate_run(0, 7);
/// assert_eq!(run.ipc.len(), run.intervals);
/// let again = w.generate_run(0, 7);
/// assert_eq!(run.ipc, again.ipc); // fully deterministic
/// ```
#[derive(Debug, Clone)]
pub struct Workload {
    benchmark: Benchmark,
    model: TrueModel,
    params: Vec<ProcessParams>,
    catalog_len: usize,
    profile_ids: Vec<EventId>,
}

/// How strongly a benchmark's activity processes lean on its
/// [`Family`](crate::Family) component. The family part dominates —
/// runs within a family produce nearby counter signatures (what the
/// `cluster` analysis mode recovers) — while the residual benchmark
/// component keeps every program distinct.
const FAMILY_WEIGHT: f64 = 0.75;

/// Mean-activity multiplier applied to the dominant profile events of
/// an [`Workload::anomalous_run`] — far outside normal run-to-run
/// variation, the way a misconfigured executor or a noisy co-runner
/// shifts a run's hot events.
const ANOMALY_SCALE: [f64; 3] = [6.0, 5.0, 4.0];

/// Ground-truth data of one simulated run, before any PMU measurement.
#[derive(Debug, Clone)]
pub struct GeneratedRun {
    /// Number of sampling intervals (varies run to run — OS jitter).
    pub intervals: usize,
    /// Per-event true counts, event-major: `counts[event][t]`.
    pub counts: Vec<Vec<f64>>,
    /// Per-event normalized activity, event-major.
    pub z: Vec<Vec<f64>>,
    /// True IPC per interval.
    pub ipc: Vec<f64>,
    /// Wall-clock execution time implied by the run length.
    pub exec_secs: f64,
}

impl Workload {
    /// Builds the workload for `benchmark` over `catalog`.
    ///
    /// Each event's activity process blends a *family* component
    /// (shared by every benchmark in `benchmark.family()`) with the
    /// benchmark's own component, [`FAMILY_WEIGHT`] toward the family.
    /// The blend is what gives counter signatures their recoverable
    /// family structure.
    pub fn new(benchmark: Benchmark, catalog: &EventCatalog) -> Self {
        let salt = benchmark_salt(benchmark);
        let family_salt = family_salt(benchmark.family());
        let params = catalog
            .iter()
            .map(|info| {
                ProcessParams::derive(info, family_salt)
                    .blend(ProcessParams::derive(info, salt), FAMILY_WEIGHT)
            })
            .collect();
        let profile_ids = benchmark
            .importance_profile()
            .iter()
            .map(|a| catalog.by_abbrev(a).expect("profile event").id())
            .collect();
        Workload {
            benchmark,
            model: TrueModel::new(benchmark, catalog),
            params,
            catalog_len: catalog.len(),
            profile_ids,
        }
    }

    /// The benchmark this workload simulates.
    pub fn benchmark(&self) -> Benchmark {
        self.benchmark
    }

    /// The ground-truth IPC model.
    pub fn model(&self) -> &TrueModel {
        &self.model
    }

    /// Within-interval burst concentration of an event (used by the PMU
    /// to spread counts across scheduler subslices).
    pub fn burstiness(&self, event: EventId) -> f64 {
        self.params[event.index()].burstiness
    }

    /// Generates the ground truth of one run. Deterministic in
    /// `(benchmark, run_index, seed)`.
    pub fn generate_run(&self, run_index: u32, seed: u64) -> GeneratedRun {
        self.generate_run_scaled(run_index, seed, 1.0)
    }

    /// Like [`Workload::generate_run`] but scaling every event's mean
    /// activity by per-event factors (used by the Spark configuration
    /// response model and the co-location interference model).
    ///
    /// `scale` maps event index to multiplier; events not present scale
    /// by 1. The scaling shifts the *normalized* activity too, so the
    /// ground-truth IPC reacts.
    pub fn generate_run_with_scales(
        &self,
        run_index: u32,
        seed: u64,
        scale: &[(EventId, f64)],
    ) -> GeneratedRun {
        let mut factors = vec![1.0; self.catalog_len];
        for &(id, f) in scale {
            factors[id.index()] = f;
        }
        self.generate_inner(run_index, seed, 1.0, &factors)
    }

    /// Generates an **anomalous** run: the same deterministic ground
    /// truth as [`Workload::generate_run`] for `(run_index, seed)`, but
    /// with the benchmark's dominant profile events running at
    /// [`ANOMALY_SCALE`] times their normal mean activity — the
    /// signature of a misconfigured executor or a hostile co-runner.
    /// The `cluster` analysis mode is expected to flag every such run.
    pub fn anomalous_run(&self, run_index: u32, seed: u64) -> GeneratedRun {
        let scale: Vec<(EventId, f64)> = self
            .profile_ids
            .iter()
            .zip(ANOMALY_SCALE)
            .map(|(&id, f)| (id, f))
            .collect();
        self.generate_run_with_scales(run_index, seed, &scale)
    }

    fn generate_run_scaled(&self, run_index: u32, seed: u64, length_scale: f64) -> GeneratedRun {
        let factors = vec![1.0; self.catalog_len];
        self.generate_inner(run_index, seed, length_scale, &factors)
    }

    fn generate_inner(
        &self,
        run_index: u32,
        seed: u64,
        length_scale: f64,
        factors: &[f64],
    ) -> GeneratedRun {
        let mut rng = StdRng::seed_from_u64(
            seed ^ benchmark_salt(self.benchmark).wrapping_mul(0x517C_C1B7_2722_0A95)
                ^ u64::from(run_index).wrapping_mul(0x2545_F491_4F6C_DD1D),
        );
        // OS nondeterminism: run length jitters ±6 %.
        let base = (self.benchmark.base_intervals() as f64 * length_scale).round();
        let n = (base * (1.0 + rng.gen_range(-0.06..0.06))).round().max(8.0) as usize;

        let mut counts = vec![Vec::with_capacity(n); self.catalog_len];
        let mut z = vec![Vec::with_capacity(n); self.catalog_len];
        let mut states: Vec<ProcessState> =
            self.params.iter().map(|&p| ProcessState::new(p)).collect();

        for t in 0..n {
            for (e, state) in states.iter_mut().enumerate() {
                let (ze_raw, count_raw) = state.step(t, n, &mut rng);
                // Mean scaling shifts activity: a 2x-scaled event runs at
                // a persistently elevated normalized level.
                let f = factors[e];
                let ze = ze_raw + (f - 1.0) * 1.5;
                counts[e].push(count_raw * f);
                z[e].push(ze);
            }
        }

        let ipc: Vec<f64> = (0..n)
            .map(|t| {
                let zt: Vec<f64> = (0..self.catalog_len).map(|e| z[e][t]).collect();
                self.model.ipc(&zt) * (1.0 + 0.01 * rng.gen_range(-1.0..1.0))
            })
            .collect();

        let exec_secs =
            self.benchmark.base_exec_secs() * n as f64 / self.benchmark.base_intervals() as f64;

        GeneratedRun {
            intervals: n,
            counts,
            z,
            ipc,
            exec_secs,
        }
    }

    /// The default measured-event set used throughout the experiments:
    /// the error-metric events (`ICACHE.MISSES`, `IDQ.DSB_UOPS`) followed
    /// by the benchmark's importance-profile events and then further
    /// catalog events, `n` in total.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the catalog size.
    pub fn top_event_ids(&self, catalog: &EventCatalog, n: usize) -> EventSet {
        assert!(n <= catalog.len(), "cannot measure more events than exist");
        let mut set = EventSet::new();
        for a in [cm_events::abbrev::ICM, cm_events::abbrev::IDU] {
            set.insert(catalog.by_abbrev(a).expect("named event").id());
        }
        for a in self.benchmark.importance_profile() {
            if set.len() >= n {
                break;
            }
            set.insert(catalog.by_abbrev(a).expect("profile event").id());
        }
        for info in catalog.iter() {
            if set.len() >= n {
                break;
            }
            set.insert(info.id());
        }
        // Trim in case the named events overlapped oddly.
        set.iter().take(n).collect()
    }
}

fn benchmark_salt(b: Benchmark) -> u64 {
    // Stable per-benchmark salt from the name bytes (FNV-1a).
    fnv(b.name())
}

fn family_salt(f: crate::Family) -> u64 {
    // A disjoint salt domain from benchmark names (no family name
    // collides with a benchmark name thanks to the prefix).
    fnv(f.name()).wrapping_mul(0xA24B_AED4_963E_E407)
}

fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in s.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_events::abbrev;

    fn catalog() -> EventCatalog {
        EventCatalog::haswell()
    }

    #[test]
    fn runs_are_deterministic_and_distinct() {
        let c = catalog();
        let w = Workload::new(Benchmark::Join, &c);
        let a = w.generate_run(0, 1);
        let b = w.generate_run(0, 1);
        assert_eq!(a.ipc, b.ipc);
        assert_eq!(a.counts[0], b.counts[0]);
        let other_run = w.generate_run(1, 1);
        assert_ne!(a.ipc, other_run.ipc);
        let other_seed = w.generate_run(0, 2);
        assert_ne!(a.ipc, other_seed.ipc);
    }

    #[test]
    fn run_lengths_vary() {
        let c = catalog();
        let w = Workload::new(Benchmark::Scan, &c);
        let lens: Vec<usize> = (0..6).map(|i| w.generate_run(i, 0).intervals).collect();
        let distinct: std::collections::HashSet<usize> = lens.iter().copied().collect();
        assert!(distinct.len() > 1, "lengths should jitter: {lens:?}");
        // ...but stay near the nominal count.
        for l in lens {
            let base = Benchmark::Scan.base_intervals() as f64;
            assert!((l as f64) > 0.9 * base && (l as f64) < 1.1 * base);
        }
    }

    #[test]
    fn ipc_is_positive_and_plausible() {
        let c = catalog();
        let w = Workload::new(Benchmark::Bayes, &c);
        let run = w.generate_run(0, 3);
        assert!(run.ipc.iter().all(|&v| v > 0.0 && v < 4.0));
    }

    #[test]
    fn important_event_correlates_with_ipc() {
        // ISF is wordcount's top event with a negative effect: high
        // stall activity must depress IPC.
        let c = catalog();
        let w = Workload::new(Benchmark::Wordcount, &c);
        let run = w.generate_run(0, 4);
        let isf = c.by_abbrev(abbrev::ISF).unwrap().id().index();
        let z = &run.z[isf];
        let mz = z.iter().sum::<f64>() / z.len() as f64;
        let mi = run.ipc.iter().sum::<f64>() / run.ipc.len() as f64;
        let cov: f64 = z
            .iter()
            .zip(&run.ipc)
            .map(|(&a, &b)| (a - mz) * (b - mi))
            .sum::<f64>();
        assert!(cov < 0.0, "covariance {cov} should be negative");
    }

    #[test]
    fn scaling_raises_counts_and_moves_ipc() {
        let c = catalog();
        let w = Workload::new(Benchmark::Sort, &c);
        let oro = c.by_abbrev(abbrev::ORO).unwrap().id();
        let base = w.generate_run(0, 5);
        let scaled = w.generate_run_with_scales(0, 5, &[(oro, 2.0)]);
        let base_mean: f64 = base.counts[oro.index()].iter().sum::<f64>() / base.intervals as f64;
        let scaled_mean: f64 =
            scaled.counts[oro.index()].iter().sum::<f64>() / scaled.intervals as f64;
        assert!(scaled_mean > 1.8 * base_mean);
        // ORO is sort's most important event: doubling it hurts IPC.
        let base_ipc: f64 = base.ipc.iter().sum::<f64>() / base.ipc.len() as f64;
        let scaled_ipc: f64 = scaled.ipc.iter().sum::<f64>() / scaled.ipc.len() as f64;
        assert!(scaled_ipc < base_ipc);
    }

    #[test]
    fn anomalous_runs_shift_dominant_events_far_outside_jitter() {
        let c = catalog();
        let w = Workload::new(Benchmark::Kmeans, &c);
        let top = c
            .by_abbrev(Benchmark::Kmeans.importance_profile()[0])
            .unwrap()
            .id();
        let mean = |run: &GeneratedRun, e: cm_events::EventId| {
            run.counts[e.index()].iter().sum::<f64>() / run.intervals as f64
        };
        // Normal run-to-run spread of the top event's mean count…
        let normals: Vec<f64> = (0..6).map(|i| mean(&w.generate_run(i, 11), top)).collect();
        let lo = normals.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = normals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        // …is dwarfed by the injected shift.
        let anomalous = mean(&w.anomalous_run(0, 11), top);
        assert!(
            anomalous > hi + 5.0 * (hi - lo),
            "anomalous {anomalous} vs normal [{lo}, {hi}]"
        );
        // Determinism: same (run_index, seed) reproduces bit-identically.
        let again = w.anomalous_run(0, 11);
        assert_eq!(
            w.anomalous_run(0, 11).counts[top.index()],
            again.counts[top.index()]
        );
        // And the anomaly differs from the normal run it shadows.
        assert_ne!(
            w.generate_run(0, 11).counts[top.index()],
            again.counts[top.index()]
        );
    }

    #[test]
    fn same_family_workloads_are_closer_than_cross_family() {
        // Mean per-event count vectors: within-family distances must sit
        // well below cross-family ones — the structure the cluster mode
        // recovers.
        let c = catalog();
        let mean_counts = |b: Benchmark| -> Vec<f64> {
            let run = Workload::new(b, &c).generate_run(0, 3);
            run.counts
                .iter()
                .map(|s| s.iter().sum::<f64>() / run.intervals as f64)
                .collect()
        };
        // Log-space distance, since per-event scales span orders of
        // magnitude.
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            a.iter()
                .zip(b)
                .map(|(&x, &y)| ((x + 1.0).ln() - (y + 1.0).ln()).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        let wordcount = mean_counts(Benchmark::Wordcount);
        let sort = mean_counts(Benchmark::Sort); // same family (spark-batch)
        let kmeans = mean_counts(Benchmark::Kmeans); // spark-iterative
        let caching = mean_counts(Benchmark::DataCaching); // services
        let within = dist(&wordcount, &sort);
        assert!(within < dist(&wordcount, &kmeans), "within {within}");
        assert!(within < dist(&wordcount, &caching), "within {within}");
    }

    #[test]
    fn top_event_ids_include_metric_events_and_profile() {
        let c = catalog();
        let w = Workload::new(Benchmark::Wordcount, &c);
        let set = w.top_event_ids(&c, 10);
        assert_eq!(set.len(), 10);
        assert!(set.contains(c.by_abbrev(abbrev::ICM).unwrap().id()));
        assert!(set.contains(c.by_abbrev(abbrev::IDU).unwrap().id()));
        assert!(set.contains(c.by_abbrev(abbrev::ISF).unwrap().id()));
        // Requesting the whole catalog also works.
        let all = w.top_event_ids(&c, c.len());
        assert_eq!(all.len(), c.len());
    }

    #[test]
    #[should_panic(expected = "more events than exist")]
    fn too_many_events_panics() {
        let c = catalog();
        let w = Workload::new(Benchmark::Wordcount, &c);
        w.top_event_ids(&c, c.len() + 1);
    }
}
