//! Ground-truth performance model.
//!
//! Each benchmark's true IPC is a fixed nonlinear function of the
//! (normalized) event activities. The function's weights encode the
//! paper's findings so the analysis pipeline has something real to
//! recover:
//!
//! * the benchmark's top-10 profile events carry large weights, with the
//!   leading one-to-three events dominating (the one-three SMI law),
//! * most remaining events carry small weights ("weakly informative"),
//! * a fixed global subset of [`NOISE_EVENT_COUNT`] events carries *no*
//!   weight — the "noisy events that can definitely be removed" behind
//!   the U-shaped EIR curve of Fig. 8,
//! * the benchmark's interaction pairs contribute product terms that a
//!   linear model cannot capture (what the interaction ranker measures).

use crate::Benchmark;
use cm_events::{EventCatalog, EventId};

/// Global scale applied to every main-effect and interaction weight:
/// calibrated so simulated IPC stays within the 0.4–2 range of real
/// server workloads (keeping the paper's relative-error metric
/// well-conditioned) while preserving all importance *ratios*.
pub(crate) const RESPONSE_SCALE: f64 = 0.55;

/// Number of events with exactly zero influence on any benchmark's IPC.
///
/// The paper's Fig. 8 finds the best model around 150 of 229 events;
/// the ~79 remainder are noise.
pub const NOISE_EVENT_COUNT: usize = 79;

/// The global set of pure-noise events (sorted by id).
///
/// Chosen deterministically among events that appear in *no* benchmark's
/// top-10 importance profile, spread across the catalog.
pub fn global_noise_events(catalog: &EventCatalog) -> Vec<EventId> {
    let mut protected = vec![false; catalog.len()];
    for b in crate::ALL_BENCHMARKS {
        for a in b.importance_profile() {
            protected[catalog.by_abbrev(a).expect("profile abbrev").id().index()] = true;
        }
    }
    // Also protect the error-metric / example events (Figs. 1–7), and
    // the L2 events that become important under co-location (Fig. 16).
    use cm_events::abbrev::{I4U, ICM, IDU, L2A, L2C, L2H, L2M, L2R, L2S};
    for a in [ICM, IDU, I4U, L2H, L2R, L2C, L2A, L2M, L2S] {
        protected[catalog.by_abbrev(a).expect("named abbrev").id().index()] = true;
    }
    let mut noise = Vec::with_capacity(NOISE_EVENT_COUNT);
    // Deterministic spread: walk ids with a stride co-prime to the
    // catalog size so the noise set is not one contiguous block.
    let n = catalog.len();
    let stride = 7;
    let mut i = 3usize;
    while noise.len() < NOISE_EVENT_COUNT {
        if !protected[i % n] && !noise.contains(&EventId::new(i % n)) {
            noise.push(EventId::new(i % n));
        }
        i += stride;
    }
    noise.sort();
    noise
}

/// The ground-truth IPC function of one benchmark.
///
/// IPC is computed from the vector of *normalized* event activities
/// `z` (one entry per catalog event, roughly zero-mean unit-variance):
///
/// ```text
/// ipc(z) = base - Σ_j w_j · φ(z_j) - Σ_(a,b) v_ab · z_a · z_b
/// ```
///
/// with `φ(z) = z + 0.12·z²` (mildly nonlinear, so boosted trees beat
/// linear models) and the product terms carrying the pairwise
/// interactions. The result is clamped to stay positive.
#[derive(Debug, Clone)]
pub struct TrueModel {
    benchmark: Benchmark,
    base_ipc: f64,
    /// Per-event main-effect weight, indexed by event id.
    weights: Vec<f64>,
    /// `(event a, event b, weight)` product terms.
    interactions: Vec<(usize, usize, f64)>,
}

impl TrueModel {
    /// Builds the ground-truth model for a benchmark.
    pub fn new(benchmark: Benchmark, catalog: &EventCatalog) -> Self {
        let mut weights = vec![0.0; catalog.len()];

        // Weak base weight for every informative event.
        let noise: Vec<bool> = {
            let mut mask = vec![false; catalog.len()];
            for id in global_noise_events(catalog) {
                mask[id.index()] = true;
            }
            mask
        };
        for (i, w) in weights.iter_mut().enumerate() {
            if !noise[i] {
                // Tiny benchmark-dependent wiggle keeps weak events from
                // being exactly tied.
                let wiggle = ((i * 31 + benchmark.abbrev().len() * 7) % 13) as f64 / 13.0;
                *w = (0.002 + 0.003 * wiggle) * RESPONSE_SCALE;
            }
        }

        // Top-10 profile weights: dominant events well separated from
        // the rest (one-three SMI law), the tail decaying gently.
        let profile = benchmark.importance_profile();
        let dominant = benchmark.dominant_count();
        for (rank, abbrev) in profile.iter().enumerate() {
            let id = catalog.by_abbrev(abbrev).expect("profile abbrev").id();
            let w = RESPONSE_SCALE
                * if rank < dominant {
                    0.32 * 0.88f64.powi(rank as i32)
                } else {
                    0.11 * 0.90f64.powi((rank - dominant) as i32)
                };
            weights[id.index()] = w;
        }

        let interactions = benchmark
            .interaction_profile()
            .into_iter()
            .map(|(a, b, s)| {
                (
                    catalog.by_abbrev(a).expect("pair abbrev").id().index(),
                    catalog.by_abbrev(b).expect("pair abbrev").id().index(),
                    0.55 * s * RESPONSE_SCALE,
                )
            })
            .collect();

        TrueModel {
            benchmark,
            base_ipc: 1.8,
            weights,
            interactions,
        }
    }

    /// The benchmark this model belongs to.
    pub fn benchmark(&self) -> Benchmark {
        self.benchmark
    }

    /// Main-effect weight of an event.
    pub fn weight(&self, id: EventId) -> f64 {
        self.weights[id.index()]
    }

    /// The interaction product terms `(a, b, weight)`.
    pub fn interactions(&self) -> &[(usize, usize, f64)] {
        &self.interactions
    }

    /// True IPC for one interval's normalized event vector.
    ///
    /// # Panics
    ///
    /// Panics if `z.len()` differs from the catalog size the model was
    /// built with.
    pub fn ipc(&self, z: &[f64]) -> f64 {
        assert_eq!(z.len(), self.weights.len(), "normalized vector width");
        let mut ipc = self.base_ipc;
        for (w, &zi) in self.weights.iter().zip(z) {
            if *w != 0.0 {
                // Saturating response: beyond ~3 sigma of activity a
                // stalled pipeline cannot stall much further.
                let zs = zi.clamp(-3.0, 3.0);
                ipc -= w * (zs + 0.12 * zs * zs);
            }
        }
        for &(a, b, v) in &self.interactions {
            ipc -= v * z[a].clamp(-3.0, 3.0) * z[b].clamp(-3.0, 3.0);
        }
        // Real machines never reach zero IPC; the floor mirrors a
        // fully stalled pipeline still retiring the odd instruction.
        ipc.max(0.2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_events::abbrev;

    fn catalog() -> EventCatalog {
        EventCatalog::haswell()
    }

    #[test]
    fn noise_set_has_expected_size_and_is_deterministic() {
        let c = catalog();
        let a = global_noise_events(&c);
        let b = global_noise_events(&c);
        assert_eq!(a.len(), NOISE_EVENT_COUNT);
        assert_eq!(a, b);
        // Sorted and unique.
        for w in a.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn noise_events_never_in_any_profile() {
        let c = catalog();
        let noise = global_noise_events(&c);
        for b in crate::ALL_BENCHMARKS {
            for a in b.importance_profile() {
                let id = c.by_abbrev(a).unwrap().id();
                assert!(!noise.contains(&id), "{b}: {a} marked noise");
            }
        }
    }

    #[test]
    fn profile_weights_descend() {
        let c = catalog();
        let m = TrueModel::new(Benchmark::Wordcount, &c);
        let profile = Benchmark::Wordcount.importance_profile();
        let ws: Vec<f64> = profile
            .iter()
            .map(|a| m.weight(c.by_abbrev(a).unwrap().id()))
            .collect();
        for w in ws.windows(2) {
            assert!(w[0] >= w[1], "weights not descending: {ws:?}");
        }
        // Dominant events clearly separated from rank-4.
        assert!(ws[0] > 2.0 * ws[3]);
    }

    #[test]
    fn noise_events_have_zero_weight() {
        let c = catalog();
        let m = TrueModel::new(Benchmark::Sort, &c);
        for id in global_noise_events(&c) {
            assert_eq!(m.weight(id), 0.0);
        }
    }

    #[test]
    fn ipc_reacts_to_important_event() {
        let c = catalog();
        let m = TrueModel::new(Benchmark::Wordcount, &c);
        let isf = c.by_abbrev(abbrev::ISF).unwrap().id().index();
        let mut z = vec![0.0; c.len()];
        let calm = m.ipc(&z);
        z[isf] = 2.0; // heavy instruction-queue stalls
        let stressed = m.ipc(&z);
        assert!(stressed < calm, "{stressed} !< {calm}");
    }

    #[test]
    fn ipc_ignores_noise_event() {
        let c = catalog();
        let m = TrueModel::new(Benchmark::Wordcount, &c);
        let noise_id = global_noise_events(&c)[0].index();
        let mut z = vec![0.0; c.len()];
        let a = m.ipc(&z);
        z[noise_id] = 5.0;
        let b = m.ipc(&z);
        assert_eq!(a, b);
    }

    #[test]
    fn interactions_are_invisible_to_main_effects() {
        // Moving only one member of a pair with zero main weight on the
        // pair term changes nothing; moving both changes IPC.
        let c = catalog();
        let m = TrueModel::new(Benchmark::Wordcount, &c);
        let (a, b, _) = m.interactions()[0];
        let mut z = vec![0.0; c.len()];
        let base = m.ipc(&z);
        z[a] = 1.0;
        let only_a = m.ipc(&z);
        z[b] = 1.0;
        let both = m.ipc(&z);
        // The pure-product part: (both - only_a) includes b's main
        // effect plus the interaction; the interaction itself is the
        // cross difference.
        let mut z2 = vec![0.0; c.len()];
        z2[b] = 1.0;
        let only_b = m.ipc(&z2);
        let cross = (both - only_a) - (only_b - base);
        assert!(
            cross.abs() > 1e-6,
            "interaction term should bend the surface"
        );
    }

    #[test]
    fn ipc_stays_positive() {
        let c = catalog();
        let m = TrueModel::new(Benchmark::WebServing, &c);
        let z = vec![3.0; c.len()];
        assert!(m.ipc(&z) > 0.0);
    }

    #[test]
    #[should_panic(expected = "normalized vector width")]
    fn wrong_width_panics() {
        let c = catalog();
        let m = TrueModel::new(Benchmark::Scan, &c);
        m.ipc(&[0.0; 3]);
    }
}
