//! Workload and PMU simulator for CounterMiner.
//!
//! The paper evaluates CounterMiner on four Haswell-E servers running
//! sixteen cloud benchmarks profiled with Linux `perf`. This crate is the
//! substitute substrate (see DESIGN.md): it simulates
//!
//! * the **sixteen benchmarks** (eight from CloudSuite 3.0, eight from
//!   the Spark 2.0 version of HiBench — Table II) as stochastic event
//!   processes with per-benchmark phase structure, ground-truth
//!   workload [`Family`] labels (with family-blended activity, so the
//!   `cluster` mode has real structure to recover), an anomalous-run
//!   injector, and a ground-truth nonlinear IPC model whose importance
//!   profile matches the paper's Figs. 9–12 findings,
//! * the **PMU** with a configurable number of hardware counters,
//!   measuring events either one-counter-one-event ([`SampleMode::Ocoe`])
//!   or multiplexed ([`SampleMode::Mlpx`]) with round-robin scheduling
//!   and linear extrapolation — organically producing the outliers and
//!   missing values of Fig. 2,
//! * the **Spark configuration response** used by the paper's case study
//!   (Section V-D, Table IV),
//! * **co-located workloads** sharing the PMU and caches (Section V-E).
//!
//! Everything is deterministic given a seed.
//!
//! [`SampleMode::Ocoe`]: cm_events::SampleMode::Ocoe
//! [`SampleMode::Mlpx`]: cm_events::SampleMode::Mlpx
//!
//! # Examples
//!
//! ```
//! use cm_events::EventCatalog;
//! use cm_sim::{Benchmark, PmuConfig, Workload};
//!
//! let catalog = EventCatalog::haswell();
//! let workload = Workload::new(Benchmark::Wordcount, &catalog);
//! let events = workload.top_event_ids(&catalog, 10);
//! let pmu = PmuConfig::default(); // 4 programmable counters
//!
//! let run = pmu.simulate_mlpx(&workload, &events, 0, 42);
//! assert_eq!(run.record.event_count(), 10);
//! assert_eq!(run.ipc.len(), run.intervals());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod benchmarks;
mod colocate;
mod pmu;
mod process;
mod spark;
mod truth;
mod workload;

pub use benchmarks::{Benchmark, Family, Suite, ALL_BENCHMARKS, CLOUDSUITE, FAMILIES, HIBENCH};
pub use colocate::ColocatedWorkload;
pub use pmu::{ActivitySource, Extrapolation, PmuConfig, Scheduling, SimRun};
pub use spark::{SparkConfig, SparkParam, SparkStudy, ALL_PARAMS};
pub use truth::{global_noise_events, TrueModel, NOISE_EVENT_COUNT};
pub use workload::{GeneratedRun, Workload};
