use std::fmt;

/// The benchmark suite a program belongs to (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// CloudSuite 3.0 — cloud services on heterogeneous frameworks
    /// (Hadoop, Memcached, Cassandra, Spark/GraphX, Nginx…).
    CloudSuite,
    /// HiBench with Spark 2.0 ("SparkBench") — MapReduce-style programs
    /// all on the Apache Spark framework.
    HiBench,
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Suite::CloudSuite => f.write_str("CloudSuite"),
            Suite::HiBench => f.write_str("HiBench"),
        }
    }
}

/// The ground-truth workload family of a benchmark — the cluster label
/// the `cluster` analysis mode is expected to recover.
///
/// Families follow suite and phase structure: Spark batch jobs share
/// map/shuffle wave behaviour, iterative Spark jobs re-touch the same
/// working set every superstep, CloudSuite analytics are long scans,
/// and interactive services ride request waves. The simulator blends
/// each benchmark's per-event activity processes toward a shared
/// family component (see [`Workload`](crate::Workload)), so runs in a
/// family produce nearby counter signatures while staying
/// benchmark-distinct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// One-pass Spark batch jobs: micro benchmarks and SQL queries.
    SparkBatch,
    /// Iterative Spark jobs: ML training and graph ranking.
    SparkIterative,
    /// CloudSuite batch analytics over large datasets.
    Analytics,
    /// Latency-bound interactive services.
    Services,
}

/// All four families, in a stable order (cluster ids index into this).
pub const FAMILIES: [Family; 4] = [
    Family::SparkBatch,
    Family::SparkIterative,
    Family::Analytics,
    Family::Services,
];

impl Family {
    /// A short stable label for reports and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Family::SparkBatch => "spark-batch",
            Family::SparkIterative => "spark-iterative",
            Family::Analytics => "analytics",
            Family::Services => "services",
        }
    }

    /// The family's index into [`FAMILIES`].
    pub fn index(self) -> usize {
        FAMILIES.iter().position(|&f| f == self).expect("listed")
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The sixteen benchmarks of the paper's evaluation (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are program names
pub enum Benchmark {
    // HiBench (Spark 2.0)
    Wordcount,
    Pagerank,
    Aggregation,
    Join,
    Scan,
    Sort,
    Bayes,
    Kmeans,
    // CloudSuite 3.0
    DataAnalytics,
    DataCaching,
    DataServing,
    GraphAnalytics,
    InMemoryAnalytics,
    MediaStreaming,
    WebSearch,
    WebServing,
}

/// The eight HiBench benchmarks.
pub const HIBENCH: [Benchmark; 8] = [
    Benchmark::Wordcount,
    Benchmark::Pagerank,
    Benchmark::Aggregation,
    Benchmark::Join,
    Benchmark::Scan,
    Benchmark::Sort,
    Benchmark::Bayes,
    Benchmark::Kmeans,
];

/// The eight CloudSuite benchmarks.
pub const CLOUDSUITE: [Benchmark; 8] = [
    Benchmark::DataAnalytics,
    Benchmark::DataCaching,
    Benchmark::DataServing,
    Benchmark::GraphAnalytics,
    Benchmark::InMemoryAnalytics,
    Benchmark::MediaStreaming,
    Benchmark::WebSearch,
    Benchmark::WebServing,
];

/// All sixteen benchmarks, HiBench first (the paper's figure order).
pub const ALL_BENCHMARKS: [Benchmark; 16] = [
    Benchmark::Wordcount,
    Benchmark::Pagerank,
    Benchmark::Aggregation,
    Benchmark::Join,
    Benchmark::Scan,
    Benchmark::Sort,
    Benchmark::Bayes,
    Benchmark::Kmeans,
    Benchmark::DataAnalytics,
    Benchmark::DataCaching,
    Benchmark::DataServing,
    Benchmark::GraphAnalytics,
    Benchmark::InMemoryAnalytics,
    Benchmark::MediaStreaming,
    Benchmark::WebSearch,
    Benchmark::WebServing,
];

impl Benchmark {
    /// The program name as used in store keys and reports.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Wordcount => "wordcount",
            Benchmark::Pagerank => "pagerank",
            Benchmark::Aggregation => "aggregation",
            Benchmark::Join => "join",
            Benchmark::Scan => "scan",
            Benchmark::Sort => "sort",
            Benchmark::Bayes => "bayes",
            Benchmark::Kmeans => "kmeans",
            Benchmark::DataAnalytics => "DataAnalytics",
            Benchmark::DataCaching => "DataCaching",
            Benchmark::DataServing => "DataServing",
            Benchmark::GraphAnalytics => "GraphAnalytics",
            Benchmark::InMemoryAnalytics => "In-memoryAnalytics",
            Benchmark::MediaStreaming => "MediaStreaming",
            Benchmark::WebSearch => "WebSearch",
            Benchmark::WebServing => "WebServing",
        }
    }

    /// The three-letter program abbreviation of Fig. 1.
    pub fn abbrev(self) -> &'static str {
        match self {
            Benchmark::Wordcount => "WDC",
            Benchmark::Pagerank => "PGR",
            Benchmark::Aggregation => "AGG",
            Benchmark::Join => "JON",
            Benchmark::Scan => "SCN",
            Benchmark::Sort => "SOT",
            Benchmark::Bayes => "BAY",
            Benchmark::Kmeans => "KME",
            Benchmark::DataAnalytics => "DAA",
            Benchmark::DataCaching => "DAC",
            Benchmark::DataServing => "DAS",
            Benchmark::GraphAnalytics => "GPA",
            Benchmark::InMemoryAnalytics => "IMA",
            Benchmark::MediaStreaming => "MES",
            Benchmark::WebSearch => "WSH",
            Benchmark::WebServing => "WSG",
        }
    }

    /// Which suite the benchmark belongs to.
    pub fn suite(self) -> Suite {
        if HIBENCH.contains(&self) {
            Suite::HiBench
        } else {
            Suite::CloudSuite
        }
    }

    /// The benchmark's ground-truth workload [`Family`] — the label the
    /// `cluster` analysis mode should recover from counter signatures.
    /// Families never cross suites.
    pub fn family(self) -> Family {
        match self {
            Benchmark::Wordcount
            | Benchmark::Sort
            | Benchmark::Aggregation
            | Benchmark::Join
            | Benchmark::Scan => Family::SparkBatch,
            Benchmark::Pagerank | Benchmark::Bayes | Benchmark::Kmeans => Family::SparkIterative,
            Benchmark::DataAnalytics | Benchmark::GraphAnalytics | Benchmark::InMemoryAnalytics => {
                Family::Analytics
            }
            Benchmark::DataCaching
            | Benchmark::DataServing
            | Benchmark::MediaStreaming
            | Benchmark::WebSearch
            | Benchmark::WebServing => Family::Services,
        }
    }

    /// The framework the benchmark runs on (Table II).
    pub fn framework(self) -> &'static str {
        match self {
            Benchmark::DataAnalytics => "Hadoop/Mahout",
            Benchmark::DataCaching => "Memcached",
            Benchmark::DataServing => "Cassandra",
            Benchmark::GraphAnalytics => "Spark/GraphX",
            Benchmark::InMemoryAnalytics => "Spark/MLlib",
            Benchmark::MediaStreaming => "Nginx/httperf",
            Benchmark::WebSearch => "Solr",
            Benchmark::WebServing => "Nginx/PHP/MySQL/Memcached",
            _ => "Spark 2.0",
        }
    }

    /// The workload category (Table II: websearch, SQL, machine
    /// learning, micro benchmark for HiBench; service class for
    /// CloudSuite).
    pub fn category(self) -> &'static str {
        match self {
            Benchmark::Wordcount | Benchmark::Sort => "micro benchmark",
            Benchmark::Pagerank => "websearch",
            Benchmark::Aggregation | Benchmark::Join | Benchmark::Scan => "SQL",
            Benchmark::Bayes | Benchmark::Kmeans => "machine learning",
            Benchmark::DataAnalytics => "batch analytics",
            Benchmark::DataCaching => "in-memory caching",
            Benchmark::DataServing => "NoSQL serving",
            Benchmark::GraphAnalytics => "graph analytics",
            Benchmark::InMemoryAnalytics => "in-memory analytics",
            Benchmark::MediaStreaming => "video streaming",
            Benchmark::WebSearch => "search indexing/serving",
            Benchmark::WebServing => "web serving",
        }
    }

    /// Number of software tiers in the deployed service. The paper
    /// observes that more tiers produce stronger dominant event
    /// interactions (Section V-C): WebServing has four tiers and a 64 %
    /// dominant pair; GraphAnalytics implements one algorithm and peaks
    /// at 19 %.
    pub fn tier_count(self) -> usize {
        match self {
            Benchmark::WebServing => 4,
            Benchmark::MediaStreaming | Benchmark::WebSearch => 3,
            Benchmark::DataCaching | Benchmark::DataServing | Benchmark::DataAnalytics => 2,
            _ => 1,
        }
    }

    /// Nominal number of sampling intervals in one run (before the OS
    /// nondeterminism jitter applied per run).
    pub fn base_intervals(self) -> usize {
        match self.suite() {
            Suite::HiBench => 420,
            Suite::CloudSuite => 480,
        }
    }

    /// Nominal wall-clock execution time in seconds, used by the Spark
    /// case study's runtime model.
    pub fn base_exec_secs(self) -> f64 {
        match self {
            Benchmark::Wordcount => 95.0,
            Benchmark::Pagerank => 210.0,
            Benchmark::Aggregation => 130.0,
            Benchmark::Join => 150.0,
            Benchmark::Scan => 110.0,
            Benchmark::Sort => 140.0,
            Benchmark::Bayes => 260.0,
            Benchmark::Kmeans => 240.0,
            _ => 300.0,
        }
    }

    /// Ground-truth importance profile: the paper's top-10 event
    /// abbreviations in descending importance (Figs. 9 and 10).
    pub fn importance_profile(self) -> [&'static str; 10] {
        use cm_events::abbrev::*;
        match self {
            Benchmark::Wordcount => [ISF, BRE, ORA, IPD, BRB, BMP, MSL, URA, URS, ITM],
            Benchmark::Pagerank => [BRE, ISF, BRB, LMH, BMP, ITM, PI3, MCO, BRC, TFA],
            Benchmark::Aggregation => [ISF, BRE, BRB, MSL, BAA, MMR, PI3, BMP, IPD, MCO],
            Benchmark::Join => [BRE, LRC, ISF, BRB, LMH, IPD, BMP, IMC, IM4, ITM],
            Benchmark::Scan => [BRE, ISF, LMH, BRB, MSL, PI3, MMR, BMP, MIE, CAC],
            Benchmark::Sort => [ORO, IDU, ISF, LRA, BRE, BRB, BMP, LMH, MSL, MST],
            Benchmark::Bayes => [BRE, ISF, PI3, MSL, BRB, IPD, MST, TFA, MMR, LMH],
            Benchmark::Kmeans => [ISF, BRE, IPD, BRB, IMT, MSL, PI3, OTS, BMP, MCO],
            Benchmark::DataAnalytics => [ISF, BRB, BRE, IPD, MMR, MSL, LMH, MUL, MST, MLL],
            Benchmark::DataCaching => [ISF, BRB, IPD, BRE, MSL, BMP, MMR, LMH, MST, MLL],
            Benchmark::DataServing => [ISF, PI3, BRE, BRB, IPD, MMR, MSL, LMH, ITM, BMP],
            Benchmark::GraphAnalytics => [ISF, BRE, BRB, MSL, DSP, TFA, MMR, DSH, MST, BMP],
            Benchmark::InMemoryAnalytics => [BRE, ISF, BRB, MSL, IPD, MMR, BMP, PI3, LMH, MLL],
            Benchmark::MediaStreaming => [BRE, ISF, BRB, MMR, IPD, MSL, LMH, BMP, MCO, PI3],
            Benchmark::WebSearch => [ISF, MSL, IPD, BRE, MMR, BMP, BRB, MST, LHN, MLL],
            Benchmark::WebServing => [MSL, ISF, BMP, MMR, LHN, IPD, ISL, BRE, MLL, LMH],
        }
    }

    /// How many leading profile events are "significantly more
    /// important" — the paper's one-three SMI law. Peak importances in
    /// Figs. 9–10 run from roughly 3.7 % to 7.6 %.
    pub fn dominant_count(self) -> usize {
        match self {
            Benchmark::Wordcount => 3, // ISF, BRE, ORA above 5 %
            Benchmark::Sort => 2,      // ORO, IDU
            Benchmark::Pagerank | Benchmark::Scan | Benchmark::Bayes => 2,
            _ => 1,
        }
    }

    /// Ground-truth interaction profile: the paper's strongest event
    /// pairs with relative strengths (Figs. 11 and 12). The first pair
    /// dominates; CloudSuite benchmarks have stronger dominance than
    /// HiBench ones (tier effect).
    pub fn interaction_profile(self) -> Vec<(&'static str, &'static str, f64)> {
        use cm_events::abbrev::*;
        let tiers = self.tier_count() as f64;
        // Dominance grows with software tiers: ~0.14 relative strength
        // for single-tier programs up to ~0.64 for four tiers.
        let top = 0.06 + 0.145 * tiers;
        match self {
            Benchmark::Wordcount => vec![
                (BRB, BMP, top),
                (ORA, BRB, 0.6 * top),
                (URA, URS, 0.5 * top),
                (BRB, ITM, 0.4 * top),
                (ORA, BMP, 0.35 * top),
                (ISF, BRB, 0.3 * top),
                (BRB, URA, 0.28 * top),
                (BRE, BRB, 0.26 * top),
                (ORA, ITM, 0.24 * top),
                (ISF, BRE, 0.22 * top),
            ],
            Benchmark::Pagerank => vec![
                (BRB, BMP, top),
                (BRE, ISF, 0.62 * top),
                (BRE, BRB, 0.5 * top),
                (BRE, BMP, 0.42 * top),
                (ISF, BRB, 0.36 * top),
                (ISF, BMP, 0.32 * top),
                (BRB, BRC, 0.28 * top),
                (BRE, PI3, 0.25 * top),
                (BRE, ITM, 0.22 * top),
                (ISF, ITM, 0.2 * top),
            ],
            Benchmark::Aggregation => vec![
                (BRE, MSL, top),
                (ISF, MSL, 0.6 * top),
                (MSL, BMP, 0.5 * top),
                (MSL, BAA, 0.42 * top),
                (MMR, BMP, 0.36 * top),
                (ISF, BRE, 0.32 * top),
                (MSL, PI3, 0.28 * top),
                (BRB, BMP, 0.25 * top),
                (BRB, MSL, 0.22 * top),
                (BRE, BRB, 0.2 * top),
            ],
            Benchmark::Join => vec![
                (BRB, BMP, top),
                (BRE, BRB, 0.6 * top),
                (ISF, BMP, 0.5 * top),
                (ISF, BRB, 0.42 * top),
                (BRE, ISF, 0.36 * top),
                (BRE, BMP, 0.32 * top),
                (LRC, BRB, 0.28 * top),
                (LRC, BMP, 0.25 * top),
                (BRE, IPD, 0.22 * top),
                (BMP, IMC, 0.2 * top),
            ],
            Benchmark::Scan => vec![
                (ISF, BMP, top),
                (ISF, LMH, 0.6 * top),
                (BRE, BMP, 0.5 * top),
                (LMH, MMR, 0.42 * top),
                (LMH, BMP, 0.36 * top),
                (BRE, LMH, 0.32 * top),
                (BRE, ISF, 0.28 * top),
                (MMR, BMP, 0.25 * top),
                (ISF, MMR, 0.22 * top),
                (BRE, MMR, 0.2 * top),
            ],
            Benchmark::Sort => vec![
                (ISF, MST, top),
                (LRA, MST, 0.62 * top),
                (ORO, MST, 0.52 * top),
                (BRE, MST, 0.44 * top),
                (IDU, MST, 0.38 * top),
                (BMP, LMH, 0.32 * top),
                (LRA, BRE, 0.28 * top),
                (BMP, MST, 0.25 * top),
                (ORO, LRA, 0.22 * top),
                (BRE, MSL, 0.2 * top),
            ],
            Benchmark::Bayes => vec![
                (ISF, BRB, top),
                (BRE, BRB, 0.6 * top),
                (BRE, ISF, 0.5 * top),
                (PI3, BRB, 0.42 * top),
                (ISF, PI3, 0.36 * top),
                (BRE, PI3, 0.32 * top),
                (MSL, MST, 0.28 * top),
                (MMR, LMH, 0.25 * top),
                (BRB, LMH, 0.22 * top),
                (BRE, LMH, 0.2 * top),
            ],
            Benchmark::Kmeans => vec![
                (BRB, BMP, top),
                (ISF, BMP, 0.6 * top),
                (ISF, BRB, 0.5 * top),
                (ITM, BMP, 0.42 * top),
                (BRB, ITM, 0.36 * top),
                (BRE, BRB, 0.32 * top),
                (BRE, BMP, 0.28 * top),
                (PI3, BMP, 0.25 * top),
                (MSL, BMP, 0.22 * top),
                (BRB, PI3, 0.2 * top),
            ],
            Benchmark::DataAnalytics => vec![
                (ISF, BRB, top),
                (BRB, BMP, 0.55 * top),
                (BRE, BRB, 0.45 * top),
                (MMR, BMP, 0.38 * top),
                (ISF, BMP, 0.32 * top),
                (MSL, BMP, 0.28 * top),
                (BRE, ISF, 0.25 * top),
                (IPD, BRB, 0.22 * top),
                (MUL, MLL, 0.2 * top),
                (LMH, BMP, 0.18 * top),
            ],
            Benchmark::DataCaching => vec![
                (BRB, BMP, top),
                (ISF, BRB, 0.5 * top),
                (BRE, BMP, 0.42 * top),
                (MSL, BRB, 0.36 * top),
                (IPD, BMP, 0.3 * top),
                (MMR, LMH, 0.26 * top),
                (BRE, BRB, 0.23 * top),
                (ISF, BMP, 0.2 * top),
                (MST, MLL, 0.18 * top),
                (BRE, ISF, 0.16 * top),
            ],
            Benchmark::DataServing => vec![
                (BRB, BMP, top),
                (PI3, BRB, 0.52 * top),
                (ISF, BRB, 0.44 * top),
                (BRE, BMP, 0.37 * top),
                (PI3, ISF, 0.31 * top),
                (MMR, BMP, 0.27 * top),
                (ITM, BRB, 0.24 * top),
                (MSL, LMH, 0.21 * top),
                (BRE, BRB, 0.19 * top),
                (IPD, BMP, 0.17 * top),
            ],
            Benchmark::GraphAnalytics => vec![
                (BRE, BRB, top),
                (ISF, BRB, 0.55 * top),
                (BRE, ISF, 0.46 * top),
                (DSP, DSH, 0.38 * top),
                (MSL, BRB, 0.32 * top),
                (TFA, DSP, 0.28 * top),
                (MMR, BMP, 0.24 * top),
                (BRB, BMP, 0.21 * top),
                (MST, MSL, 0.19 * top),
                (ISF, TFA, 0.17 * top),
            ],
            Benchmark::InMemoryAnalytics => vec![
                (BRB, BMP, top),
                (BRE, BRB, 0.54 * top),
                (BRE, ISF, 0.45 * top),
                (MSL, BMP, 0.37 * top),
                (ISF, BRB, 0.31 * top),
                (MMR, BMP, 0.27 * top),
                (IPD, BRB, 0.23 * top),
                (PI3, BMP, 0.2 * top),
                (LMH, MMR, 0.18 * top),
                (MLL, MSL, 0.16 * top),
            ],
            Benchmark::MediaStreaming => vec![
                (BRB, BMP, top),
                (BRE, BRB, 0.52 * top),
                (MMR, BRB, 0.43 * top),
                (ISF, BMP, 0.36 * top),
                (BRE, MMR, 0.3 * top),
                (IPD, BMP, 0.26 * top),
                (MSL, LMH, 0.23 * top),
                (BRE, ISF, 0.2 * top),
                (MCO, BRB, 0.18 * top),
                (PI3, BMP, 0.16 * top),
            ],
            Benchmark::WebSearch => vec![
                (BRB, BMP, top),
                (ISF, MSL, 0.52 * top),
                (MSL, BMP, 0.43 * top),
                (IPD, BRB, 0.36 * top),
                (MMR, BMP, 0.3 * top),
                (BRE, BRB, 0.26 * top),
                (ISF, BMP, 0.23 * top),
                (MST, MSL, 0.2 * top),
                (LHN, MMR, 0.18 * top),
                (BRE, ISF, 0.16 * top),
            ],
            Benchmark::WebServing => vec![
                (BRB, BMP, top),
                (MSL, ISF, 0.5 * top),
                (MSL, BMP, 0.4 * top),
                (MMR, LHN, 0.33 * top),
                (ISF, BMP, 0.28 * top),
                (ISL, MSL, 0.24 * top),
                (BRE, BRB, 0.21 * top),
                (IPD, BMP, 0.19 * top),
                (MLL, MMR, 0.17 * top),
                (LMH, MSL, 0.15 * top),
            ],
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_events::EventCatalog;
    use std::collections::HashSet;

    #[test]
    fn sixteen_distinct_benchmarks() {
        let names: HashSet<&str> = ALL_BENCHMARKS.iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), 16);
        let abbrevs: HashSet<&str> = ALL_BENCHMARKS.iter().map(|b| b.abbrev()).collect();
        assert_eq!(abbrevs.len(), 16);
    }

    #[test]
    fn suites_partition_benchmarks() {
        for b in HIBENCH {
            assert_eq!(b.suite(), Suite::HiBench);
        }
        for b in CLOUDSUITE {
            assert_eq!(b.suite(), Suite::CloudSuite);
        }
    }

    #[test]
    fn hibench_runs_on_spark() {
        for b in HIBENCH {
            assert_eq!(b.framework(), "Spark 2.0");
        }
        // CloudSuite uses heterogeneous frameworks.
        let frameworks: HashSet<&str> = CLOUDSUITE.iter().map(|b| b.framework()).collect();
        assert!(frameworks.len() > 4);
    }

    #[test]
    fn importance_profiles_resolve_in_catalog() {
        let catalog = EventCatalog::haswell();
        for b in ALL_BENCHMARKS {
            let profile = b.importance_profile();
            let distinct: HashSet<&str> = profile.iter().copied().collect();
            assert_eq!(distinct.len(), 10, "{b} has duplicate profile events");
            for a in profile {
                assert!(
                    catalog.by_abbrev(a).is_some(),
                    "{b}: abbrev {a} not in catalog"
                );
            }
        }
    }

    #[test]
    fn interaction_profiles_resolve_and_rank() {
        let catalog = EventCatalog::haswell();
        for b in ALL_BENCHMARKS {
            let pairs = b.interaction_profile();
            assert_eq!(pairs.len(), 10, "{b}");
            for (a, c, s) in &pairs {
                assert!(catalog.by_abbrev(a).is_some(), "{b}: {a}");
                assert!(catalog.by_abbrev(c).is_some(), "{b}: {c}");
                assert!(*s > 0.0);
                assert_ne!(a, c, "{b}: self-interaction");
            }
            // The first pair dominates.
            assert!(pairs[0].2 > pairs[1].2, "{b}");
        }
    }

    #[test]
    fn isf_tops_most_benchmarks() {
        // The paper: ISF is the most important event for most cloud
        // programs.
        let isf_first = ALL_BENCHMARKS
            .iter()
            .filter(|b| b.importance_profile()[0] == cm_events::abbrev::ISF)
            .count();
        assert!(isf_first >= 8, "ISF first for only {isf_first} benchmarks");
    }

    #[test]
    fn brb_bmp_dominates_ten_benchmarks() {
        // The paper: BRB-BMP is the top interaction pair in 10 of 16.
        use cm_events::abbrev::{BMP, BRB};
        let count = ALL_BENCHMARKS
            .iter()
            .filter(|b| {
                let p = &b.interaction_profile()[0];
                (p.0, p.1) == (BRB, BMP)
            })
            .count();
        assert_eq!(count, 10);
    }

    #[test]
    fn webserving_has_strongest_interaction_dominance() {
        let ws = Benchmark::WebServing.interaction_profile()[0].2;
        let gpa = Benchmark::GraphAnalytics.interaction_profile()[0].2;
        assert!(ws > 2.5 * gpa);
        assert_eq!(Benchmark::WebServing.tier_count(), 4);
    }

    #[test]
    fn families_partition_benchmarks_within_suites() {
        for b in ALL_BENCHMARKS {
            // Families never cross suites.
            let expected_suite = match b.family() {
                Family::SparkBatch | Family::SparkIterative => Suite::HiBench,
                Family::Analytics | Family::Services => Suite::CloudSuite,
            };
            assert_eq!(b.suite(), expected_suite, "{b}");
        }
        // Every family is populated with at least three benchmarks, so
        // within-family cohesion is actually testable.
        for f in FAMILIES {
            let n = ALL_BENCHMARKS.iter().filter(|b| b.family() == f).count();
            assert!(n >= 3, "{f}: only {n} members");
            assert_eq!(FAMILIES[f.index()], f);
        }
        let names: HashSet<&str> = FAMILIES.iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), FAMILIES.len());
    }

    #[test]
    fn dominant_counts_follow_one_three_smi() {
        for b in ALL_BENCHMARKS {
            let d = b.dominant_count();
            assert!((1..=3).contains(&d), "{b}: dominant count {d}");
        }
    }
}
