use crate::workload::{GeneratedRun, Workload};

/// Anything whose activity the PMU can measure: a single [`Workload`] or
/// a [`ColocatedWorkload`](crate::ColocatedWorkload).
pub trait ActivitySource {
    /// The program name recorded in run records.
    fn program_name(&self) -> &str;
    /// Within-interval burst concentration of an event.
    fn burstiness(&self, event: cm_events::EventId) -> f64;
}

impl ActivitySource for Workload {
    fn program_name(&self) -> &str {
        self.benchmark().name()
    }
    fn burstiness(&self, event: cm_events::EventId) -> f64 {
        Workload::burstiness(self, event)
    }
}
use cm_events::{EventId, EventSet, RunRecord, SampleMode, TimeSeries};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// How MLPX reconstructs a full-interval value from the subslices it
/// actually observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Extrapolation {
    /// Plain linear scaling: `observed × total/observed_slices` — what
    /// `perf` does (time-based scaling).
    Scaling,
    /// Mathur & Cook's sub-interval estimation baseline: scaled values
    /// additionally smoothed against neighbouring intervals, reducing
    /// variance during sampling. CounterMiner's cleaning is complementary
    /// to (and composable with) this.
    SubIntervalLinear,
}

/// How multiplexed event groups are assigned to scheduler subslices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheduling {
    /// Fixed round-robin rotation — the kernel default the paper's
    /// error analysis assumes.
    RoundRobin,
    /// Lim et al.'s adaptive baseline (the paper's reference 34): groups whose
    /// events showed *stable* recent values yield their subslices to
    /// groups with fast-changing events.
    Adaptive,
}

/// Configuration of the simulated performance monitoring unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PmuConfig {
    /// Number of programmable counters (4 per SMT thread on the paper's
    /// Haswell-E machines).
    pub counters: usize,
    /// Scheduler subslices per sampling interval (how often the kernel
    /// rotates event groups within one reported interval).
    pub subslices: usize,
    /// MLPX reconstruction method.
    pub extrapolation: Extrapolation,
    /// Group-to-subslice scheduling policy.
    pub scheduling: Scheduling,
    /// Probability of a scheduling glitch per (event, interval): the
    /// observed window straddles a rotation boundary and double-counts,
    /// producing the extreme outliers of Fig. 2(a).
    pub glitch_prob: f64,
    /// Relative measurement noise of a dedicated (OCOE) counter.
    pub ocoe_noise: f64,
}

impl Default for PmuConfig {
    fn default() -> Self {
        PmuConfig {
            counters: 4,
            subslices: 24,
            extrapolation: Extrapolation::Scaling,
            scheduling: Scheduling::RoundRobin,
            glitch_prob: 0.006,
            ocoe_noise: 0.015,
        }
    }
}

/// One measured run: what the profiler reports, plus the simulator's
/// ground truth for validation.
#[derive(Debug, Clone)]
pub struct SimRun {
    /// The measured per-event series (what a real profiler would emit).
    pub record: RunRecord,
    /// Measured IPC per interval (from the fixed counters, which do not
    /// multiplex — accurate up to small noise).
    pub ipc: TimeSeries,
    /// Ground-truth per-event series (not available on real hardware).
    pub true_counts: BTreeMap<EventId, TimeSeries>,
}

impl SimRun {
    /// Number of sampling intervals in this run.
    pub fn intervals(&self) -> usize {
        self.ipc.len()
    }
}

impl PmuConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `counters == 0` or `subslices == 0`.
    fn check(&self) {
        assert!(self.counters > 0, "PMU needs at least one counter");
        assert!(self.subslices > 0, "need at least one subslice");
    }

    /// Measures `events` during one run of `workload` with dedicated
    /// counters (OCOE).
    ///
    /// Real hardware can only dedicate `counters` events per run; a set
    /// larger than that models the paper's golden-reference procedure of
    /// `ceil(E/C)` repeated OCOE runs merged into one record.
    pub fn simulate_ocoe(
        &self,
        workload: &Workload,
        events: &EventSet,
        run_index: u32,
        seed: u64,
    ) -> SimRun {
        self.check();
        let truth = workload.generate_run(run_index, seed);
        self.measure_ocoe(workload, &truth, events, run_index, seed)
    }

    /// Measures `events` during one run of `workload` by multiplexing
    /// them onto the configured number of counters.
    pub fn simulate_mlpx(
        &self,
        workload: &Workload,
        events: &EventSet,
        run_index: u32,
        seed: u64,
    ) -> SimRun {
        self.check();
        let truth = workload.generate_run(run_index, seed);
        self.measure_mlpx(workload, &truth, events, run_index, seed)
    }

    /// Measures `n_runs` independent runs of `workload`, fanning the
    /// per-run simulation across the thread pool.
    ///
    /// Run `i` is measured with run index `i`; every run derives its own
    /// RNG from `(program, run index, seed)`, so the result is identical
    /// to calling [`PmuConfig::simulate_ocoe`] /
    /// [`PmuConfig::simulate_mlpx`] in a serial loop, at any thread
    /// count.
    pub fn simulate_batch(
        &self,
        workload: &Workload,
        events: &EventSet,
        mode: SampleMode,
        n_runs: usize,
        seed: u64,
    ) -> Vec<SimRun> {
        self.check();
        cm_par::map_range(n_runs, |i| match mode {
            SampleMode::Ocoe => self.simulate_ocoe(workload, events, i as u32, seed),
            SampleMode::Mlpx => self.simulate_mlpx(workload, events, i as u32, seed),
        })
    }

    /// OCOE measurement of an already-generated run (used by the Spark
    /// and co-location studies which pre-scale the ground truth).
    pub fn measure_ocoe<W: ActivitySource>(
        &self,
        source: &W,
        truth: &GeneratedRun,
        events: &EventSet,
        run_index: u32,
        seed: u64,
    ) -> SimRun {
        self.check();
        let mut rng = measurement_rng(source.program_name(), run_index, seed, 0xA5);
        let mut record = RunRecord::new(source.program_name(), run_index, SampleMode::Ocoe);
        record.set_exec_time_secs(truth.exec_secs);
        let mut true_counts = BTreeMap::new();
        let mut samples: u64 = 0;
        for event in events {
            let series = &truth.counts[event.index()];
            samples += series.len() as u64;
            let measured: TimeSeries = series
                .iter()
                .map(|&v| v * (1.0 + self.ocoe_noise * rng.gen_range(-1.0..1.0)))
                .collect();
            record.insert_series(event, measured);
            true_counts.insert(event, TimeSeries::from_values(series.clone()));
        }
        // Every (event, interval) pair yields one dedicated sample under
        // OCOE. Per-run totals are pure functions of the run, so the
        // counter sum is thread-count independent.
        cm_obs::counter_add("pmu.samples", samples);
        SimRun {
            record,
            ipc: measured_ipc(truth, &mut rng),
            true_counts,
        }
    }

    /// MLPX measurement of an already-generated run.
    pub fn measure_mlpx<W: ActivitySource>(
        &self,
        source: &W,
        truth: &GeneratedRun,
        events: &EventSet,
        run_index: u32,
        seed: u64,
    ) -> SimRun {
        self.check();
        let mut rng = measurement_rng(source.program_name(), run_index, seed, 0x3C);
        let n = truth.intervals;
        let ids: Vec<EventId> = events.iter().collect();
        let groups = ids.len().div_ceil(self.counters);
        let mut measured: Vec<Vec<Option<f64>>> = vec![Vec::with_capacity(n); ids.len()];

        // Recent-value history per event, driving adaptive scheduling.
        let mut last: Vec<[Option<f64>; 2]> = vec![[None, None]; ids.len()];
        // Observability tallies: directly observed (event, interval)
        // samples and counter-group switches across consecutive global
        // subslices — both pure functions of the run, so their sums stay
        // thread-count independent under `simulate_batch`.
        let mut samples: u64 = 0;
        let mut switches: u64 = 0;
        let mut prev_group: Option<usize> = None;
        for t in 0..n {
            let slice_groups = self.assign_slices(&last, ids.len(), groups, t);
            for &g in &slice_groups {
                if prev_group.is_some_and(|p| p != g) {
                    switches += 1;
                }
                prev_group = Some(g);
            }
            for (pos, &event) in ids.iter().enumerate() {
                let truth_val = truth.counts[event.index()][t];
                let value = if groups <= 1 {
                    // Everything fits on the counters: no multiplexing.
                    Some(truth_val * (1.0 + self.ocoe_noise * rng.gen_range(-1.0..1.0)))
                } else {
                    self.multiplexed_value(
                        source,
                        event,
                        truth_val,
                        truth.z[event.index()][t],
                        pos / self.counters,
                        &slice_groups,
                        &mut rng,
                    )
                };
                if let Some(v) = value {
                    samples += 1;
                    last[pos] = [last[pos][1], Some(v)];
                }
                measured[pos].push(value);
            }
        }
        cm_obs::counter_add("pmu.samples", samples);
        cm_obs::counter_add("pmu.group_switches", switches);

        // Intervals where the rotation never scheduled the event are
        // reconstructed by linear time interpolation between observed
        // intervals — what `perf` reports when more event groups exist
        // than fit into one reported interval (Mytkowicz et al.).
        let mut measured: Vec<Vec<f64>> = measured
            .into_iter()
            .map(|series| interpolate_unobserved(&series))
            .collect();

        if self.extrapolation == Extrapolation::SubIntervalLinear && groups > 1 {
            for series in &mut measured {
                smooth_in_place(series);
            }
        }

        let mut record = RunRecord::new(source.program_name(), run_index, SampleMode::Mlpx);
        record.set_exec_time_secs(truth.exec_secs);
        let mut true_counts = BTreeMap::new();
        for (pos, &event) in ids.iter().enumerate() {
            record.insert_series(
                event,
                TimeSeries::from_values(std::mem::take(&mut measured[pos])),
            );
            true_counts.insert(
                event,
                TimeSeries::from_values(truth.counts[event.index()].clone()),
            );
        }
        SimRun {
            record,
            ipc: measured_ipc(truth, &mut rng),
            true_counts,
        }
    }

    /// Which group runs in each subslice of interval `t`.
    fn assign_slices(
        &self,
        last: &[[Option<f64>; 2]],
        n_events: usize,
        groups: usize,
        t: usize,
    ) -> Vec<usize> {
        let s = self.subslices;
        match self.scheduling {
            Scheduling::RoundRobin => {
                // Continuous rotation across the whole run: global
                // subslice `t·S + k` runs group `(t·S + k) % groups`.
                // With more groups than subslices per interval, an event
                // is observed only every few intervals.
                (0..s).map(|k| (t * s + k) % groups).collect()
            }
            Scheduling::Adaptive => {
                // A group's priority is the largest relative change its
                // events showed between their last two measurements;
                // unknown history counts as maximally unstable so every
                // event is measured early on.
                let mut priority = vec![0.0f64; groups];
                for (pos, history) in last.iter().enumerate().take(n_events) {
                    let g = pos / self.counters;
                    let instability = match history {
                        [Some(a), Some(b)] => ((b - a).abs() / (a.abs() + b.abs() + 1e-9)).min(1.0),
                        _ => 1.0,
                    };
                    priority[g] = priority[g].max(instability.max(0.05));
                }
                // Every group keeps a guaranteed slice when they fit
                // (Lim et al. modulate frequency, they never starve an
                // event); the *remaining* slices go to unstable groups
                // by largest remainder, rotated by t for tie-breaking.
                let reserved = if groups <= s { 1 } else { 0 };
                let spare = s - reserved * groups.min(s);
                let total: f64 = priority.iter().sum();
                let mut counts: Vec<usize> = priority
                    .iter()
                    .map(|&p| reserved + (p / total * spare as f64).floor() as usize)
                    .collect();
                let mut assigned: usize = counts.iter().sum();
                let mut order: Vec<usize> = (0..groups).collect();
                order.sort_by(|&a, &b| {
                    let ra = priority[a] / total * spare as f64 - (counts[a] - reserved) as f64;
                    let rb = priority[b] / total * spare as f64 - (counts[b] - reserved) as f64;
                    rb.total_cmp(&ra)
                });
                let mut i = t % groups.max(1);
                while assigned < s {
                    counts[order[i % groups]] += 1;
                    assigned += 1;
                    i += 1;
                }
                let mut out = Vec::with_capacity(s);
                for (g, &c) in counts.iter().enumerate() {
                    for _ in 0..c {
                        out.push(g);
                    }
                }
                out.truncate(s);
                out
            }
        }
    }

    /// Reconstructs one interval value for one multiplexed event, or
    /// `None` when the schedule never ran the event's group during this
    /// interval (caller interpolates).
    #[allow(clippy::too_many_arguments)]
    fn multiplexed_value<W: ActivitySource>(
        &self,
        source: &W,
        event: EventId,
        truth_val: f64,
        z: f64,
        group: usize,
        slice_groups: &[usize],
        rng: &mut StdRng,
    ) -> Option<f64> {
        let s = self.subslices;
        let weights = crate::process::subslice_weights(s, source.burstiness(event), z, rng);
        let mut observed = 0.0;
        let mut active = 0usize;
        for (k, w) in weights.iter().enumerate() {
            if slice_groups[k] == group {
                observed += truth_val * w;
                active += 1;
            }
        }
        if active == 0 {
            return None;
        }
        let mut value = observed * s as f64 / active as f64;
        // Boundary double-count glitches happen at rotation boundaries:
        // more groups rotate more often, so the per-interval glitch
        // probability scales with the group count.
        let groups = slice_groups.iter().copied().max().unwrap_or(0) + 1;
        let glitch = (self.glitch_prob * 0.5 * (groups as f64 - 1.0)).min(0.03);
        if rng.gen::<f64>() < glitch {
            value *= 4.0 + 4.0 * rng.gen::<f64>();
        }
        Some(value)
    }
}

/// Fills unobserved (`None`) intervals by linear interpolation between
/// the nearest observed neighbours; leading/trailing gaps copy the
/// nearest observation. An all-`None` series becomes all zeros.
fn interpolate_unobserved(series: &[Option<f64>]) -> Vec<f64> {
    let n = series.len();
    let mut out = vec![0.0; n];
    let observed: Vec<usize> = (0..n).filter(|&i| series[i].is_some()).collect();
    if observed.is_empty() {
        return out;
    }
    for i in 0..n {
        match series[i] {
            Some(v) => out[i] = v,
            None => {
                let next = observed.partition_point(|&j| j < i);
                let right = observed.get(next).copied();
                let left = if next > 0 {
                    Some(observed[next - 1])
                } else {
                    None
                };
                out[i] = match (left, right) {
                    (Some(l), Some(r)) => {
                        let frac = (i - l) as f64 / (r - l) as f64;
                        let lv = series[l].expect("observed");
                        let rv = series[r].expect("observed");
                        lv + frac * (rv - lv)
                    }
                    (Some(l), None) => series[l].expect("observed"),
                    (None, Some(r)) => series[r].expect("observed"),
                    (None, None) => unreachable!("observed is non-empty"),
                };
            }
        }
    }
    out
}

fn measured_ipc(truth: &GeneratedRun, rng: &mut StdRng) -> TimeSeries {
    truth
        .ipc
        .iter()
        .map(|&v| v * (1.0 + 0.005 * rng.gen_range(-1.0..1.0)))
        .collect()
}

fn measurement_rng(program: &str, run_index: u32, seed: u64, tag: u64) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ tag;
    for byte in program.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ seed.rotate_left(17) ^ (u64::from(run_index) << 32))
}

/// In-place neighbour smoothing (the sub-interval linear estimation
/// baseline): each value becomes the average of itself and the linear
/// interpolation of its neighbours.
fn smooth_in_place(series: &mut [f64]) {
    if series.len() < 3 {
        return;
    }
    let orig = series.to_vec();
    for i in 1..series.len() - 1 {
        let interp = 0.5 * (orig[i - 1] + orig[i + 1]);
        series[i] = 0.5 * (orig[i] + interp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;
    use cm_events::{abbrev, EventCatalog};

    fn setup() -> (EventCatalog, Workload) {
        let c = EventCatalog::haswell();
        let w = Workload::new(Benchmark::Wordcount, &c);
        (c, w)
    }

    #[test]
    fn ocoe_is_accurate() {
        let (c, w) = setup();
        let events = w.top_event_ids(&c, 4);
        let run = PmuConfig::default().simulate_ocoe(&w, &events, 0, 1);
        for (event, measured) in run.record.iter() {
            let truth = &run.true_counts[&event];
            for (m, t) in measured.iter().zip(truth.iter()) {
                if t > 0.0 {
                    assert!((m - t).abs() / t < 0.05, "OCOE error too large");
                }
            }
        }
    }

    #[test]
    fn mlpx_with_few_events_avoids_multiplexing() {
        let (c, w) = setup();
        let events = w.top_event_ids(&c, 4); // fits on 4 counters
        let run = PmuConfig::default().simulate_mlpx(&w, &events, 0, 1);
        for (event, measured) in run.record.iter() {
            let truth = &run.true_counts[&event];
            for (m, t) in measured.iter().zip(truth.iter()) {
                if t > 1.0 {
                    assert!((m - t).abs() / t < 0.05);
                }
            }
        }
    }

    #[test]
    fn mlpx_is_noisier_than_ocoe() {
        let (c, w) = setup();
        let events = w.top_event_ids(&c, 10);
        let pmu = PmuConfig::default();
        let ocoe = pmu.simulate_ocoe(&w, &events, 0, 2);
        let mlpx = pmu.simulate_mlpx(&w, &events, 1, 2);
        let err = |run: &SimRun| {
            let mut total = 0.0;
            let mut count = 0;
            for (event, measured) in run.record.iter() {
                let truth = &run.true_counts[&event];
                for (m, t) in measured.iter().zip(truth.iter()) {
                    if t > 1.0 {
                        total += (m - t).abs() / t;
                        count += 1;
                    }
                }
            }
            total / count as f64
        };
        let e_ocoe = err(&ocoe);
        let e_mlpx = err(&mlpx);
        assert!(
            e_mlpx > 3.0 * e_ocoe,
            "MLPX {e_mlpx} should dwarf OCOE {e_ocoe}"
        );
    }

    #[test]
    fn mlpx_produces_missing_values() {
        let (c, w) = setup();
        let events = w.top_event_ids(&c, 24);
        let run = PmuConfig::default().simulate_mlpx(&w, &events, 0, 3);
        let zeros: usize = run.record.iter().map(|(_, ts)| ts.zero_count()).sum();
        assert!(zeros > 0, "expected some missing values");
        // Ground truth has essentially no true zeros for these events.
        let true_zeros: usize = run.true_counts.values().map(|ts| ts.zero_count()).sum();
        assert!(zeros > true_zeros);
    }

    #[test]
    fn mlpx_produces_outliers() {
        let (c, w) = setup();
        let events = w.top_event_ids(&c, 10);
        let run = PmuConfig::default().simulate_mlpx(&w, &events, 0, 4);
        // Some measured value should far exceed the true maximum of its
        // series (the Fig. 2(a) phenomenon).
        let mut found = false;
        for (event, measured) in run.record.iter() {
            let t_max = run.true_counts[&event].max().unwrap();
            if measured.iter().any(|m| m > 2.0 * t_max) {
                found = true;
                break;
            }
        }
        assert!(found, "expected at least one gross outlier");
    }

    #[test]
    fn error_grows_with_event_count() {
        let (c, w) = setup();
        let pmu = PmuConfig::default();
        let avg_err = |n_events: usize| {
            let events = w.top_event_ids(&c, n_events);
            let icm = c.by_abbrev(abbrev::ICM).unwrap().id();
            let mut total = 0.0;
            let mut count = 0;
            for run_idx in 0..3 {
                let run = pmu.simulate_mlpx(&w, &events, run_idx, 5);
                let measured = run.record.series(icm).unwrap();
                let truth = &run.true_counts[&icm];
                for (m, t) in measured.iter().zip(truth.iter()) {
                    if t > 1.0 {
                        total += (m - t).abs() / t;
                        count += 1;
                    }
                }
            }
            total / count as f64
        };
        let e10 = avg_err(10);
        let e36 = avg_err(36);
        assert!(e36 > e10, "36-event error {e36} <= 10-event error {e10}");
    }

    #[test]
    fn sub_interval_linear_reduces_variance() {
        let (c, w) = setup();
        let events = w.top_event_ids(&c, 16);
        let icm = c.by_abbrev(abbrev::ICM).unwrap().id();
        let scaling = PmuConfig::default();
        let smoothed = PmuConfig {
            extrapolation: Extrapolation::SubIntervalLinear,
            ..PmuConfig::default()
        };
        let sse = |pmu: &PmuConfig| {
            let run = pmu.simulate_mlpx(&w, &events, 0, 6);
            let measured = run.record.series(icm).unwrap();
            let truth = &run.true_counts[&icm];
            measured
                .iter()
                .zip(truth.iter())
                .map(|(m, t)| (m - t) * (m - t))
                .sum::<f64>()
        };
        assert!(sse(&smoothed) < sse(&scaling));
    }

    #[test]
    fn exec_time_and_ipc_recorded() {
        let (c, w) = setup();
        let events = w.top_event_ids(&c, 10);
        let run = PmuConfig::default().simulate_mlpx(&w, &events, 0, 7);
        assert!(run.record.exec_time_secs() > 0.0);
        assert_eq!(run.ipc.len(), run.intervals());
        assert!(run.ipc.iter().all(|v| v > 0.0));
    }

    #[test]
    fn adaptive_scheduling_produces_complete_series() {
        let (c, w) = setup();
        let events = w.top_event_ids(&c, 24);
        let pmu = PmuConfig {
            scheduling: Scheduling::Adaptive,
            ..PmuConfig::default()
        };
        let run = pmu.simulate_mlpx(&w, &events, 0, 8);
        for (_, series) in run.record.iter() {
            assert_eq!(series.len(), run.intervals());
            assert!(series.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn adaptive_scheduling_tracks_bursty_events_better() {
        // The adaptive policy concentrates subslices on unstable events;
        // averaged over runs its error on the bursty ICACHE.MISSES series
        // should not exceed round-robin's.
        let (c, w) = setup();
        let events = w.top_event_ids(&c, 24);
        let icm = c.by_abbrev(abbrev::ICM).unwrap().id();
        // Median absolute relative error: robust to the (equally likely
        // under both schedulers) multiplicative glitch spikes.
        let median_err = |scheduling: Scheduling| {
            let pmu = PmuConfig {
                scheduling,
                ..PmuConfig::default()
            };
            let mut errs = Vec::new();
            for seed in 0..6 {
                let run = pmu.simulate_mlpx(&w, &events, 0, seed);
                let measured = run.record.series(icm).unwrap();
                let truth = &run.true_counts[&icm];
                for (m, t) in measured.iter().zip(truth.iter()) {
                    if t > 1.0 {
                        errs.push((m - t).abs() / t);
                    }
                }
            }
            errs.sort_by(f64::total_cmp);
            errs[errs.len() / 2]
        };
        let rr = median_err(Scheduling::RoundRobin);
        let adaptive = median_err(Scheduling::Adaptive);
        assert!(
            adaptive < 1.25 * rr,
            "adaptive {adaptive:.4} should be comparable or better than round-robin {rr:.4}"
        );
    }

    #[test]
    fn batch_matches_sequential_runs() {
        let (c, w) = setup();
        let events = w.top_event_ids(&c, 10);
        let pmu = PmuConfig::default();
        let batch = pmu.simulate_batch(&w, &events, SampleMode::Mlpx, 3, 9);
        assert_eq!(batch.len(), 3);
        for (i, run) in batch.iter().enumerate() {
            let reference = pmu.simulate_mlpx(&w, &events, i as u32, 9);
            assert_eq!(run.ipc, reference.ipc);
            assert_eq!(run.true_counts, reference.true_counts);
            for (event, series) in run.record.iter() {
                assert_eq!(Some(series), reference.record.series(event));
            }
        }
    }

    #[test]
    fn batch_is_thread_count_invariant() {
        let (c, w) = setup();
        let events = w.top_event_ids(&c, 8);
        let pmu = PmuConfig::default();
        cm_par::set_max_threads(1);
        let serial = pmu.simulate_batch(&w, &events, SampleMode::Ocoe, 4, 10);
        cm_par::set_max_threads(0);
        let parallel = pmu.simulate_batch(&w, &events, SampleMode::Ocoe, 4, 10);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.ipc, b.ipc);
            for (event, series) in a.record.iter() {
                assert_eq!(Some(series), b.record.series(event));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one counter")]
    fn zero_counters_panics() {
        let (c, w) = setup();
        let events = w.top_event_ids(&c, 4);
        PmuConfig {
            counters: 0,
            ..PmuConfig::default()
        }
        .simulate_ocoe(&w, &events, 0, 0);
    }
}
