//! Spark configuration response model (Section V-D, Table IV).
//!
//! The paper's case study tunes Spark configuration parameters and shows
//! that the parameter tightly coupled to an *important* event (e.g.
//! `spark.broadcast.blockSize` ↔ ORO for `sort`) moves execution time
//! far more than one coupled to an unimportant event
//! (`spark.network.timeout` ↔ I4U). This module models that coupling:
//! each parameter has a normalized setting in `[0, 1]`, an optimum, and
//! a coupled event whose activity (and therefore the ground-truth IPC
//! and runtime) degrades quadratically away from the optimum.

use crate::{ActivitySource, Benchmark, PmuConfig, SimRun, Workload};
use cm_events::{EventCatalog, EventId, EventSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// The Spark configuration parameters of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SparkParam {
    /// `spark.broadcast.blockSize` (bbs).
    BroadcastBlockSize,
    /// `spark.network.timeout` (nwt).
    NetworkTimeout,
    /// `spark.executor.cores` (exc).
    ExecutorCores,
    /// `spark.executor.memory` (exm).
    ExecutorMemory,
    /// `spark.default.parallelism` (dpl).
    DefaultParallelism,
    /// `spark.reducer.maxSizeInFlight` (rdm).
    ReducerMaxSizeInFlight,
    /// `spark.memory.fraction` (mmf).
    MemoryFraction,
    /// `spark.kryoserializer.buffer` (kbf).
    KryoBuffer,
    /// `spark.kryoserializer.buffer.max` (kbm).
    KryoBufferMax,
    /// `spark.shuffle.sort.bypassMergeThreshold` (ssb).
    ShuffleSortBypass,
    /// `spark.io.compression.snappy.blockSize` (ics).
    IoCompressionBlockSize,
    /// `spark.shuffle.file.buffer` (sfb).
    ShuffleFileBuffer,
    /// `spark.driver.memory` (dmm).
    DriverMemory,
}

/// All modeled parameters, in Table IV order.
pub const ALL_PARAMS: [SparkParam; 13] = [
    SparkParam::BroadcastBlockSize,
    SparkParam::NetworkTimeout,
    SparkParam::ExecutorCores,
    SparkParam::ExecutorMemory,
    SparkParam::DefaultParallelism,
    SparkParam::ReducerMaxSizeInFlight,
    SparkParam::MemoryFraction,
    SparkParam::KryoBuffer,
    SparkParam::KryoBufferMax,
    SparkParam::ShuffleSortBypass,
    SparkParam::IoCompressionBlockSize,
    SparkParam::ShuffleFileBuffer,
    SparkParam::DriverMemory,
];

impl SparkParam {
    /// Lowercase abbreviation used in Fig. 13's pair labels.
    pub fn abbrev(self) -> &'static str {
        match self {
            SparkParam::BroadcastBlockSize => "bbs",
            SparkParam::NetworkTimeout => "nwt",
            SparkParam::ExecutorCores => "exc",
            SparkParam::ExecutorMemory => "exm",
            SparkParam::DefaultParallelism => "dpl",
            SparkParam::ReducerMaxSizeInFlight => "rdm",
            SparkParam::MemoryFraction => "mmf",
            SparkParam::KryoBuffer => "kbf",
            SparkParam::KryoBufferMax => "kbm",
            SparkParam::ShuffleSortBypass => "ssb",
            SparkParam::IoCompressionBlockSize => "ics",
            SparkParam::ShuffleFileBuffer => "sfb",
            SparkParam::DriverMemory => "dmm",
        }
    }

    /// Full Spark property name.
    pub fn spark_name(self) -> &'static str {
        match self {
            SparkParam::BroadcastBlockSize => "spark.broadcast.blockSize",
            SparkParam::NetworkTimeout => "spark.network.timeout",
            SparkParam::ExecutorCores => "spark.executor.cores",
            SparkParam::ExecutorMemory => "spark.executor.memory",
            SparkParam::DefaultParallelism => "spark.default.parallelism",
            SparkParam::ReducerMaxSizeInFlight => "spark.reducer.maxSizeInFlight",
            SparkParam::MemoryFraction => "spark.memory.fraction",
            SparkParam::KryoBuffer => "spark.kryoserializer.buffer",
            SparkParam::KryoBufferMax => "spark.kryoserializer.buffer.max",
            SparkParam::ShuffleSortBypass => "spark.shuffle.sort.bypassMergeThreshold",
            SparkParam::IoCompressionBlockSize => "spark.io.compression.snappy.blockSize",
            SparkParam::ShuffleFileBuffer => "spark.shuffle.file.buffer",
            SparkParam::DriverMemory => "spark.driver.memory",
        }
    }

    /// The event abbreviation this parameter tightly correlates with
    /// (the Fig. 13 coupling).
    pub fn coupled_event(self) -> &'static str {
        use cm_events::abbrev::*;
        match self {
            SparkParam::BroadcastBlockSize => ORO,
            SparkParam::NetworkTimeout => I4U,
            SparkParam::ExecutorCores => TFA,
            SparkParam::ExecutorMemory => ISF,
            SparkParam::DefaultParallelism => BRB,
            SparkParam::ReducerMaxSizeInFlight => BMP,
            SparkParam::MemoryFraction => MMR,
            SparkParam::KryoBuffer => MSL,
            SparkParam::KryoBufferMax => BRE,
            SparkParam::ShuffleSortBypass => PI3,
            SparkParam::IoCompressionBlockSize => ITM,
            SparkParam::ShuffleFileBuffer => IMC,
            SparkParam::DriverMemory => CAC,
        }
    }

    /// Human-readable labels for the five sweep settings (e.g. the
    /// `2M..32M` block sizes of Fig. 14 for bbs).
    pub fn sweep_labels(self) -> [&'static str; 5] {
        match self {
            SparkParam::BroadcastBlockSize => ["2M", "4M", "8M", "16M", "32M"],
            SparkParam::NetworkTimeout => ["50s", "100s", "150s", "300s", "500s"],
            SparkParam::ExecutorCores => ["1", "2", "4", "6", "8"],
            SparkParam::ExecutorMemory => ["1g", "2g", "4g", "8g", "16g"],
            SparkParam::DefaultParallelism => ["8", "16", "32", "64", "128"],
            SparkParam::ReducerMaxSizeInFlight => ["24m", "48m", "96m", "144m", "192m"],
            SparkParam::MemoryFraction => ["0.2", "0.4", "0.6", "0.75", "0.9"],
            SparkParam::KryoBuffer => ["32k", "64k", "128k", "256k", "512k"],
            SparkParam::KryoBufferMax => ["16m", "64m", "128m", "256m", "512m"],
            SparkParam::ShuffleSortBypass => ["50", "100", "200", "400", "800"],
            SparkParam::IoCompressionBlockSize => ["16k", "32k", "64k", "128k", "256k"],
            SparkParam::ShuffleFileBuffer => ["16k", "32k", "64k", "128k", "256k"],
            SparkParam::DriverMemory => ["1g", "2g", "4g", "8g", "16g"],
        }
    }

    /// Normalized sweep settings corresponding to
    /// [`SparkParam::sweep_labels`].
    pub fn sweep_settings(self) -> [f64; 5] {
        [0.0, 0.25, 0.5, 0.75, 1.0]
    }

    /// The optimal normalized setting of this parameter (where its
    /// coupled event is calmest). Deterministic per parameter.
    pub fn optimum(self) -> f64 {
        // Spread optima so "default = 0.5" is near-optimal for some
        // parameters and poor for others.
        let idx = ALL_PARAMS.iter().position(|&p| p == self).unwrap();
        0.1 + 0.06 * idx as f64 % 0.8
    }
}

/// A full Spark configuration: a normalized setting per parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct SparkConfig {
    settings: BTreeMap<SparkParam, f64>,
}

impl Default for SparkConfig {
    /// Every parameter at its Spark default (modeled as setting 0.5).
    fn default() -> Self {
        SparkConfig {
            settings: ALL_PARAMS.iter().map(|&p| (p, 0.5)).collect(),
        }
    }
}

impl SparkConfig {
    /// The default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets one parameter, returning `self` for chaining.
    ///
    /// # Panics
    ///
    /// Panics unless `setting` is within `[0, 1]`.
    pub fn with(mut self, param: SparkParam, setting: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&setting),
            "setting must be normalized to [0, 1]"
        );
        self.settings.insert(param, setting);
        self
    }

    /// The normalized setting of a parameter.
    pub fn setting(&self, param: SparkParam) -> f64 {
        self.settings[&param]
    }
}

/// The case-study driver: a benchmark plus the parameter-to-event
/// response model.
///
/// # Examples
///
/// ```
/// use cm_events::EventCatalog;
/// use cm_sim::{Benchmark, SparkConfig, SparkParam, SparkStudy};
///
/// let catalog = EventCatalog::haswell();
/// let study = SparkStudy::new(Benchmark::Sort, &catalog);
///
/// // Tuning bbs (coupled to sort's top event ORO) swings runtime more
/// // than tuning nwt (coupled to the unimportant I4U).
/// let swing = |p: SparkParam| {
///     let times: Vec<f64> = p
///         .sweep_settings()
///         .iter()
///         .map(|&s| study.exec_time(&SparkConfig::new().with(p, s), 0, 1))
///         .collect();
///     let min = times.iter().copied().fold(f64::INFINITY, f64::min);
///     let max = times.iter().copied().fold(0.0, f64::max);
///     (max - min) / min
/// };
/// assert!(swing(SparkParam::BroadcastBlockSize) > 2.0 * swing(SparkParam::NetworkTimeout));
/// ```
#[derive(Debug, Clone)]
pub struct SparkStudy {
    workload: Workload,
    /// Per parameter: coupled event id and that event's ground-truth
    /// importance weight.
    couplings: Vec<(SparkParam, EventId, f64)>,
}

impl SparkStudy {
    /// Builds the study for one benchmark.
    pub fn new(benchmark: Benchmark, catalog: &EventCatalog) -> Self {
        let workload = Workload::new(benchmark, catalog);
        let couplings = ALL_PARAMS
            .iter()
            .map(|&p| {
                let id = catalog
                    .by_abbrev(p.coupled_event())
                    .expect("coupled event")
                    .id();
                let w = workload.model().weight(id);
                (p, id, w)
            })
            .collect();
        SparkStudy {
            workload,
            couplings,
        }
    }

    /// The underlying workload.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The event each parameter is coupled to.
    pub fn coupled_event_id(&self, param: SparkParam) -> EventId {
        self.couplings
            .iter()
            .find(|(p, _, _)| *p == param)
            .expect("all parameters have couplings")
            .1
    }

    /// Per-event activity multipliers implied by a configuration:
    /// `1 + 1.2·(setting - optimum)²` on each coupled event.
    pub fn event_scale_factors(&self, config: &SparkConfig) -> Vec<(EventId, f64)> {
        self.couplings
            .iter()
            .map(|&(p, id, _)| {
                let d = config.setting(p) - p.optimum();
                (id, 1.0 + 1.2 * d * d * 4.0)
            })
            .collect()
    }

    /// Modeled wall-clock execution time under a configuration.
    ///
    /// Each parameter contributes a slowdown proportional to its
    /// quadratic distance from optimum, weighted by the *importance* of
    /// its coupled event (a floor keeps unimportant parameters from
    /// being exactly free — timeouts still cost something).
    pub fn exec_time(&self, config: &SparkConfig, run_index: u32, seed: u64) -> f64 {
        let mut time = self.workload.benchmark().base_exec_secs();
        for &(p, _, w) in &self.couplings {
            let d = config.setting(p) - p.optimum();
            let g = 4.0 * d * d; // up to ~3.2 at the range edge
            time *= 1.0 + 1.25 * (0.08 + w) * g;
        }
        let mut rng =
            StdRng::seed_from_u64(seed ^ (u64::from(run_index) << 24) ^ config_hash(config));
        time * (1.0 + 0.02 * rng.gen_range(-1.0..1.0))
    }

    /// Simulates one profiled run under a configuration: event activity
    /// is scaled per [`SparkStudy::event_scale_factors`] and measured by
    /// the PMU in MLPX mode.
    pub fn simulate_run(
        &self,
        config: &SparkConfig,
        events: &EventSet,
        pmu: &PmuConfig,
        run_index: u32,
        seed: u64,
    ) -> SimRun {
        let scales = self.event_scale_factors(config);
        let truth =
            self.workload
                .generate_run_with_scales(run_index, seed ^ config_hash(config), &scales);
        let mut run = pmu.measure_mlpx(&self.workload, &truth, events, run_index, seed);
        run.record
            .set_exec_time_secs(self.exec_time(config, run_index, seed));
        run
    }
}

impl ActivitySource for SparkStudy {
    fn program_name(&self) -> &str {
        self.workload.benchmark().name()
    }
    fn burstiness(&self, event: EventId) -> f64 {
        self.workload.burstiness(event)
    }
}

fn config_hash(config: &SparkConfig) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for (p, s) in &config.settings {
        h ^= s.to_bits() ^ (p.abbrev().len() as u64);
        for b in p.abbrev().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_events::abbrev;

    fn study() -> (EventCatalog, SparkStudy) {
        let c = EventCatalog::haswell();
        let s = SparkStudy::new(Benchmark::Sort, &c);
        (c, s)
    }

    #[test]
    fn params_have_distinct_abbrevs_and_names() {
        let abbrevs: std::collections::HashSet<&str> =
            ALL_PARAMS.iter().map(|p| p.abbrev()).collect();
        assert_eq!(abbrevs.len(), ALL_PARAMS.len());
        let names: std::collections::HashSet<&str> =
            ALL_PARAMS.iter().map(|p| p.spark_name()).collect();
        assert_eq!(names.len(), ALL_PARAMS.len());
    }

    #[test]
    fn coupled_events_resolve() {
        let c = EventCatalog::haswell();
        for p in ALL_PARAMS {
            assert!(
                c.by_abbrev(p.coupled_event()).is_some(),
                "{} -> {}",
                p.abbrev(),
                p.coupled_event()
            );
        }
    }

    #[test]
    fn bbs_couples_to_oro_and_nwt_to_i4u() {
        // The paper's case-study pairing for sort.
        assert_eq!(SparkParam::BroadcastBlockSize.coupled_event(), abbrev::ORO);
        assert_eq!(SparkParam::NetworkTimeout.coupled_event(), abbrev::I4U);
    }

    #[test]
    fn important_param_swings_time_more() {
        let (_, s) = study();
        let swing = |p: SparkParam| {
            let times: Vec<f64> = p
                .sweep_settings()
                .iter()
                .map(|&v| s.exec_time(&SparkConfig::new().with(p, v), 0, 3))
                .collect();
            let min = times.iter().copied().fold(f64::INFINITY, f64::min);
            let max = times.iter().copied().fold(0.0, f64::max);
            (max - min) / min
        };
        let bbs = swing(SparkParam::BroadcastBlockSize);
        let nwt = swing(SparkParam::NetworkTimeout);
        assert!(bbs > 2.0 * nwt, "bbs swing {bbs} vs nwt swing {nwt}");
        // Roughly the paper's magnitudes (111.3 % vs 29.4 %).
        assert!(bbs > 0.5 && bbs < 3.0, "bbs swing {bbs}");
        assert!(nwt < 0.8, "nwt swing {nwt}");
    }

    #[test]
    fn exec_time_is_deterministic_per_seed() {
        let (_, s) = study();
        let cfg = SparkConfig::new().with(SparkParam::MemoryFraction, 0.9);
        assert_eq!(s.exec_time(&cfg, 0, 1), s.exec_time(&cfg, 0, 1));
        assert_ne!(s.exec_time(&cfg, 0, 1), s.exec_time(&cfg, 1, 1));
    }

    #[test]
    fn scale_factors_peak_away_from_optimum() {
        let (_, s) = study();
        let p = SparkParam::BroadcastBlockSize;
        let at_opt = s.event_scale_factors(&SparkConfig::new().with(p, p.optimum()));
        let far = s.event_scale_factors(&SparkConfig::new().with(p, 1.0));
        let oro = s.coupled_event_id(p);
        let get = |v: &Vec<(EventId, f64)>| v.iter().find(|(id, _)| *id == oro).unwrap().1;
        assert!((get(&at_opt) - 1.0).abs() < 1e-9);
        assert!(get(&far) > 1.5);
    }

    #[test]
    fn simulate_run_produces_mlpx_record() {
        let (c, s) = study();
        let events = s.workload().top_event_ids(&c, 10);
        let run = s.simulate_run(
            &SparkConfig::default(),
            &events,
            &PmuConfig::default(),
            0,
            1,
        );
        assert_eq!(run.record.event_count(), 10);
        assert!(run.record.exec_time_secs() > 0.0);
    }

    #[test]
    #[should_panic(expected = "normalized")]
    fn out_of_range_setting_panics() {
        SparkConfig::new().with(SparkParam::NetworkTimeout, 1.5);
    }
}
