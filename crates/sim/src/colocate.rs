//! Co-located workloads sharing a node (Section V-E, Fig. 16).
//!
//! Two benchmarks run together on the same machine: hardware counters
//! observe the *combined* event stream (per-benchmark attribution is
//! impossible — the paper makes the same point). The interference model:
//!
//! * event counts add; normalized activities average,
//! * when the benchmarks *differ*, shared-cache contention inflates the
//!   L2 request/miss events and makes them genuinely performance-relevant
//!   (the six L2 events entering the top-10 of Fig. 16), front-end churn
//!   boosts the branch-execution event, and each benchmark's private
//!   bottlenecks are diluted,
//! * when the same benchmark co-runs with itself, behaviour stays close
//!   to solo (the paper's 'DataCaching + DataCaching' observation).

use crate::pmu::ActivitySource;
use crate::truth::RESPONSE_SCALE;
use crate::workload::GeneratedRun;
use crate::{Benchmark, Workload};
use cm_events::{abbrev, EventCatalog, EventId};

/// Two benchmarks co-scheduled on one node.
///
/// # Examples
///
/// ```
/// use cm_events::EventCatalog;
/// use cm_sim::{Benchmark, ColocatedWorkload};
///
/// let catalog = EventCatalog::haswell();
/// let pair = ColocatedWorkload::new(
///     Benchmark::DataCaching,
///     Benchmark::GraphAnalytics,
///     &catalog,
/// );
/// assert_eq!(pair.name(), "DataCaching+GraphAnalytics");
/// let run = pair.generate_run(0, 1);
/// assert_eq!(run.ipc.len(), run.intervals);
/// ```
#[derive(Debug, Clone)]
pub struct ColocatedWorkload {
    first: Workload,
    second: Workload,
    name: String,
    /// Merged main-effect weights, indexed by event id.
    weights: Vec<f64>,
    /// Merged interaction terms.
    interactions: Vec<(usize, usize, f64)>,
    /// L2 event ids (inflated under heterogeneous co-location).
    l2_ids: Vec<usize>,
    heterogeneous: bool,
}

/// L2 activity boost applied to normalized activity under heterogeneous
/// co-location.
const L2_Z_BOOST: f64 = 1.2;
/// L2 count inflation factor under heterogeneous co-location.
const L2_COUNT_BOOST: f64 = 2.5;

impl ColocatedWorkload {
    /// Builds the co-located pair.
    pub fn new(a: Benchmark, b: Benchmark, catalog: &EventCatalog) -> Self {
        let first = Workload::new(a, catalog);
        let second = Workload::new(b, catalog);
        let heterogeneous = a != b;
        let n = catalog.len();

        // Heterogeneous interference dilutes each program's private
        // bottlenecks (the paper finds ISF gone from the heterogeneous
        // top-10); homogeneous co-location preserves them.
        let dilution = if heterogeneous { 0.2 } else { 0.5 };
        let mut weights: Vec<f64> = (0..n)
            .map(|i| {
                let id = EventId::new(i);
                dilution * (first.model().weight(id) + second.model().weight(id))
            })
            .collect();

        let l2_ids: Vec<usize> = [
            abbrev::L2H,
            abbrev::L2R,
            abbrev::L2C,
            abbrev::L2A,
            abbrev::L2M,
            abbrev::L2S,
        ]
        .iter()
        .map(|a| catalog.by_abbrev(a).expect("L2 abbrev").id().index())
        .collect();

        if heterogeneous {
            // Shared L1/L2 contention: the mixed instruction and data
            // footprints thrash the private caches, making L2 traffic a
            // first-order performance factor.
            for (k, &id) in l2_ids.iter().enumerate() {
                weights[id] += 0.14 * RESPONSE_SCALE * 0.97f64.powi(k as i32);
            }
            // Front-end churn from context mixing boosts the
            // branch-execution event (the Fig. 16 top event).
            let bre = catalog.by_abbrev(abbrev::BRE).expect("BRE").id().index();
            weights[bre] += 0.25 * RESPONSE_SCALE;
        }

        let mut interactions = Vec::new();
        for model in [first.model(), second.model()] {
            for &(x, y, v) in model.interactions() {
                interactions.push((x, y, if heterogeneous { 0.35 * v } else { 0.5 * v }));
            }
        }

        ColocatedWorkload {
            name: format!("{}+{}", a.name(), b.name()),
            first,
            second,
            weights,
            interactions,
            l2_ids,
            heterogeneous,
        }
    }

    /// The combined program name, `"first+second"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the two benchmarks differ.
    pub fn is_heterogeneous(&self) -> bool {
        self.heterogeneous
    }

    /// Merged main-effect weight of an event.
    pub fn weight(&self, id: EventId) -> f64 {
        self.weights[id.index()]
    }

    /// Generates the merged ground truth of one co-located run.
    pub fn generate_run(&self, run_index: u32, seed: u64) -> GeneratedRun {
        let ra = self.first.generate_run(run_index, seed);
        let rb = self.second.generate_run(run_index, seed ^ 0x00C0_FFEE);
        let n = ra.intervals.min(rb.intervals);
        let width = ra.counts.len();

        let mut counts = vec![Vec::with_capacity(n); width];
        let mut z = vec![Vec::with_capacity(n); width];
        for e in 0..width {
            let is_l2 = self.heterogeneous && self.l2_ids.contains(&e);
            for t in 0..n {
                let mut c = ra.counts[e][t] + rb.counts[e][t];
                let mut zi = 0.5 * (ra.z[e][t] + rb.z[e][t]);
                if is_l2 {
                    c *= L2_COUNT_BOOST;
                    zi += L2_Z_BOOST;
                }
                counts[e].push(c);
                z[e].push(zi);
            }
        }

        // Contention lowers the achievable base IPC.
        let base = if self.heterogeneous { 1.25 } else { 1.65 };
        let ipc: Vec<f64> = (0..n)
            .map(|t| {
                let mut v = base;
                for (e, w) in self.weights.iter().enumerate() {
                    if *w != 0.0 {
                        let zi = z[e][t]
                            - if self.l2_ids.contains(&e) && self.heterogeneous {
                                // The boost shifts the operating point; IPC
                                // responds to deviations around it.
                                L2_Z_BOOST
                            } else {
                                0.0
                            };
                        let zs = zi.clamp(-3.0, 3.0);
                        v -= w * (zs + 0.12 * zs * zs);
                    }
                }
                for &(a, b, w) in &self.interactions {
                    v -= w * z[a][t].clamp(-3.0, 3.0) * z[b][t].clamp(-3.0, 3.0);
                }
                v.max(0.2)
            })
            .collect();

        GeneratedRun {
            intervals: n,
            counts,
            z,
            ipc,
            exec_secs: ra.exec_secs.max(rb.exec_secs),
        }
    }
}

impl ActivitySource for ColocatedWorkload {
    fn program_name(&self) -> &str {
        &self.name
    }
    fn burstiness(&self, event: EventId) -> f64 {
        self.first
            .burstiness(event)
            .max(self.second.burstiness(event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PmuConfig, SimRun};
    use cm_events::EventSet;

    fn catalog() -> EventCatalog {
        EventCatalog::haswell()
    }

    #[test]
    fn homogeneous_pair_matches_solo_weights() {
        let c = catalog();
        let solo = Workload::new(Benchmark::DataCaching, &c);
        let pair = ColocatedWorkload::new(Benchmark::DataCaching, Benchmark::DataCaching, &c);
        assert!(!pair.is_heterogeneous());
        for info in c.iter() {
            let id = info.id();
            assert!(
                (pair.weight(id) - solo.model().weight(id)).abs() < 1e-12,
                "{}",
                info.abbrev()
            );
        }
    }

    #[test]
    fn heterogeneous_pair_promotes_l2_and_bre() {
        let c = catalog();
        let pair = ColocatedWorkload::new(Benchmark::DataCaching, Benchmark::GraphAnalytics, &c);
        assert!(pair.is_heterogeneous());
        let bre = c.by_abbrev(abbrev::BRE).unwrap().id();
        let isf = c.by_abbrev(abbrev::ISF).unwrap().id();
        let l2h = c.by_abbrev(abbrev::L2H).unwrap().id();
        // BRE overtakes ISF; L2 events gain real weight.
        assert!(pair.weight(bre) > pair.weight(isf));
        assert!(pair.weight(l2h) > 0.05);
        // Solo models give L2 essentially nothing.
        let solo = Workload::new(Benchmark::DataCaching, &c);
        assert!(solo.model().weight(l2h) < 0.02);
    }

    #[test]
    fn l2_counts_inflate_under_heterogeneous_colocation() {
        let c = catalog();
        let homo = ColocatedWorkload::new(Benchmark::DataCaching, Benchmark::DataCaching, &c);
        let hetero = ColocatedWorkload::new(Benchmark::DataCaching, Benchmark::GraphAnalytics, &c);
        let l2h = c.by_abbrev(abbrev::L2H).unwrap().id().index();
        let mean =
            |run: &GeneratedRun, e: usize| run.counts[e].iter().sum::<f64>() / run.intervals as f64;
        let m_homo = mean(&homo.generate_run(0, 1), l2h);
        let m_hetero = mean(&hetero.generate_run(0, 1), l2h);
        assert!(
            m_hetero > 1.5 * m_homo,
            "hetero {m_hetero} vs homo {m_homo}"
        );
    }

    #[test]
    fn merged_run_is_measurable_by_pmu() {
        let c = catalog();
        let pair = ColocatedWorkload::new(Benchmark::DataCaching, Benchmark::GraphAnalytics, &c);
        let truth = pair.generate_run(0, 2);
        let events: EventSet = c.iter().take(10).map(|e| e.id()).collect();
        let run: SimRun = PmuConfig::default().measure_mlpx(&pair, &truth, &events, 0, 2);
        assert_eq!(run.record.program(), "DataCaching+GraphAnalytics");
        assert_eq!(run.record.event_count(), 10);
    }

    #[test]
    fn ipc_stays_positive_under_contention() {
        let c = catalog();
        let pair = ColocatedWorkload::new(Benchmark::WebServing, Benchmark::WebSearch, &c);
        let run = pair.generate_run(0, 3);
        assert!(run.ipc.iter().all(|&v| v > 0.0));
        // Heterogeneous co-location runs slower than solo on average.
        let solo = Workload::new(Benchmark::WebServing, &c).generate_run(0, 3);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&run.ipc) < mean(&solo.ipc));
    }
}
