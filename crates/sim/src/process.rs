//! Per-event stochastic processes.
//!
//! Each event's per-interval activity is an AR(1) process with
//! family-dependent innovations (Gaussian for Gaussian-tagged events,
//! centred Gumbel for long-tail ones), occasional bursts, and phase
//! effects (the cold-start instruction-cache spike of Fig. 2(b), periodic
//! shuffle bursts). The process produces both a *normalized activity*
//! `z` (what the ground-truth IPC model consumes) and a *raw count*
//! (what the PMU measures).

use cm_events::{EventInfo, EventKind, TailFamily};
use rand::Rng;

/// Static parameters of one event's activity process for one benchmark.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ProcessParams {
    /// Mean per-interval count.
    pub mu: f64,
    /// Coefficient of variation mapping `z` to counts.
    pub cv: f64,
    /// AR(1) autocorrelation.
    pub rho: f64,
    /// Within-interval burst concentration in `[0, 1)`; high values mean
    /// the interval's activity lands in few subslices (what makes MLPX
    /// lossy).
    pub burstiness: f64,
    /// Probability of a burst interval (adds a large positive `z` jump).
    pub burst_prob: f64,
    /// Innovation family.
    pub family: TailFamily,
    /// Cold-start multiplier applied over the first ~5 % of intervals
    /// (1.0 = no cold-start effect).
    pub cold_start: f64,
    /// Amplitude of the periodic phase component (shuffle waves in batch
    /// jobs, request waves in services); 0 disables it.
    pub phase_amplitude: f64,
    /// Period of the phase component, in intervals.
    pub phase_period: f64,
    /// Phase offset, radians.
    pub phase_offset: f64,
}

impl ProcessParams {
    /// Derives process parameters for an event within a benchmark,
    /// deterministically from the event metadata and a benchmark salt.
    pub fn derive(info: &EventInfo, salt: u64) -> Self {
        // Cheap deterministic hash for per-(event, benchmark) variety.
        let h = mix(info.id().index() as u64 ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let unit = |k: u64| ((h >> k) & 0xFFFF) as f64 / 65535.0;

        let (cv, rho, burstiness, burst_prob) = match info.family() {
            TailFamily::Gaussian => (
                0.10 + 0.10 * unit(0),
                0.55 + 0.25 * unit(16),
                0.05 + 0.20 * unit(32),
                0.002,
            ),
            TailFamily::LongTail => (
                0.25 + 0.25 * unit(0),
                0.45 + 0.30 * unit(16),
                0.45 + 0.40 * unit(32),
                0.02 + 0.03 * unit(48),
            ),
        };
        // Cold caches and TLBs: strong start-of-run transient.
        let cold_start = match info.kind() {
            EventKind::Cache | EventKind::Frontend => 3.0 + 1.5 * unit(8),
            EventKind::Tlb => 2.0 + 2.0 * unit(8),
            _ => 1.0,
        };
        // Memory and cache events ride the workload's phase structure
        // (map/shuffle waves, request bursts); front-end throughput
        // events are steadier.
        let phase_amplitude = match info.kind() {
            EventKind::Memory | EventKind::Cache => 0.45 + 0.45 * unit(40),
            EventKind::Tlb => 0.15 + 0.25 * unit(40),
            _ => 0.1 * unit(40),
        };
        ProcessParams {
            mu: info.base_scale() * (0.5 + unit(24)),
            cv,
            rho,
            burstiness,
            burst_prob,
            family: info.family(),
            cold_start,
            phase_amplitude,
            phase_period: 32.0 + 96.0 * unit(44),
            phase_offset: 2.0 * std::f64::consts::PI * unit(52),
        }
    }
}

impl ProcessParams {
    /// Blends two parameter sets, `weight` toward `self` (the family
    /// component) and `1 - weight` toward `other` (the benchmark's own
    /// component). Every numeric field is a convex combination, so the
    /// blend stays inside the ranges [`ProcessParams::derive`]
    /// guarantees; the innovation family comes from the event metadata
    /// and is identical on both sides.
    pub fn blend(self, other: ProcessParams, weight: f64) -> ProcessParams {
        debug_assert!((0.0..=1.0).contains(&weight));
        debug_assert_eq!(self.family, other.family);
        let mix = |a: f64, b: f64| weight * a + (1.0 - weight) * b;
        ProcessParams {
            mu: mix(self.mu, other.mu),
            cv: mix(self.cv, other.cv),
            rho: mix(self.rho, other.rho),
            burstiness: mix(self.burstiness, other.burstiness),
            burst_prob: mix(self.burst_prob, other.burst_prob),
            family: self.family,
            cold_start: mix(self.cold_start, other.cold_start),
            phase_amplitude: mix(self.phase_amplitude, other.phase_amplitude),
            phase_period: mix(self.phase_period, other.phase_period),
            phase_offset: mix(self.phase_offset, other.phase_offset),
        }
    }
}

fn mix(mut x: u64) -> u64 {
    // splitmix64 finalizer.
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Smallest per-interval activity an active event can emit, as a
/// fraction of its mean count (see the floor in [`ProcessState::step`]).
const MIN_ACTIVITY: f64 = 1e-3;

/// Evolving state of one event's process during a run.
#[derive(Debug, Clone)]
pub(crate) struct ProcessState {
    params: ProcessParams,
    ar: f64,
}

impl ProcessState {
    pub fn new(params: ProcessParams) -> Self {
        ProcessState { params, ar: 0.0 }
    }

    /// Advances one interval; returns `(z, count)`.
    ///
    /// `t` is the interval index and `n` the total interval count of the
    /// run (for phase effects).
    pub fn step<R: Rng + ?Sized>(&mut self, t: usize, n: usize, rng: &mut R) -> (f64, f64) {
        let p = &self.params;
        let eps = match p.family {
            TailFamily::Gaussian => gaussian(rng),
            // Centred Gumbel: right-skewed innovations with mean 0 and
            // roughly unit variance.
            TailFamily::LongTail => (gumbel_std(rng) - 0.5772) / 1.2825,
        };
        self.ar = p.rho * self.ar + (1.0 - p.rho * p.rho).sqrt() * eps;
        let mut z = self.ar;
        if rng.gen::<f64>() < p.burst_prob {
            z += 1.8 + 2.2 * rng.gen::<f64>();
        }
        // Periodic workload phase (shuffle/request waves).
        if p.phase_amplitude > 0.0 {
            z += p.phase_amplitude
                * (2.0 * std::f64::consts::PI * t as f64 / p.phase_period + p.phase_offset).sin();
        }
        // Cold-start transient over the first 5 % of the run, decaying
        // geometrically.
        if p.cold_start > 1.0 {
            let horizon = (n / 20).max(1);
            if t < horizon {
                let decay = 1.0 - t as f64 / horizon as f64;
                z += (p.cold_start - 1.0) * decay;
            }
        }
        // Floor the activity at a small positive fraction of the mean:
        // an *active* event's ground truth must never be exactly zero,
        // because exact zero is reserved as the signature of an
        // unobserved MLPX subslice (Fig. 2(b)'s missing values) and the
        // cleaner's zero-category rule keys on it. Without the floor, a
        // deep AR(1) excursion (`z <= -1/cv`) under a high-CV blend
        // clamps to 0.0 and an exactly-measured OCOE run appears to
        // contain missing samples.
        let count = p.mu * (1.0 + p.cv * z).max(MIN_ACTIVITY);
        (z, count)
    }
}

/// Splits an interval's activity across `s` subslices, returning weights
/// summing to 1.
///
/// Calm intervals spread activity near-uniformly (mild jitter), so
/// time-based extrapolation is only mildly wrong — matching the paper's
/// moderate baseline MLPX error. *Burst* intervals (`z` well above the
/// process mean) concentrate activity: a burst may land entirely in one
/// subslice, which produces a gross over-estimate when that slice is
/// observed (Fig. 2(a)'s outliers) and an exact zero when it is not
/// (Fig. 2(b)'s missing values).
pub(crate) fn subslice_weights<R: Rng + ?Sized>(
    s: usize,
    burstiness: f64,
    z: f64,
    rng: &mut R,
) -> Vec<f64> {
    debug_assert!(s > 0);
    let mut w: Vec<f64> = (0..s).map(|_| 1.0 + 0.25 * rng.gen::<f64>()).collect();
    if z > 1.35 {
        let gamma = (burstiness * (z - 1.35) / 2.5).clamp(0.0, 0.95);
        let hot = rng.gen_range(0..s);
        if rng.gen::<f64>() < 0.5 * gamma {
            // The whole burst lands in one subslice.
            w.fill(0.0);
            w[hot] = 1.0;
            return w;
        }
        // Partial concentration: a mild gamma-fraction rides the hot
        // slice (gross concentrations were handled above).
        let gamma = 0.3 * gamma;
        let total: f64 = w.iter().sum();
        for x in &mut w {
            *x *= (1.0 - gamma) / total;
        }
        w[hot] += gamma;
        return w;
    }
    let total: f64 = w.iter().sum();
    for x in &mut w {
        *x /= total;
    }
    w
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Box–Muller; one value per call keeps the state simple.
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn gumbel_std<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u: f64 = rng.gen::<f64>().clamp(1e-12, 1.0 - 1e-12);
    -(-u.ln()).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_events::{abbrev, EventCatalog};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn catalog() -> EventCatalog {
        EventCatalog::haswell()
    }

    #[test]
    fn params_are_deterministic_per_salt() {
        let c = catalog();
        let info = c.by_abbrev(abbrev::ISF).unwrap();
        let a = ProcessParams::derive(info, 1);
        let b = ProcessParams::derive(info, 1);
        assert_eq!(a.mu, b.mu);
        assert_eq!(a.burstiness, b.burstiness);
        let other = ProcessParams::derive(info, 2);
        assert_ne!(a.mu, other.mu);
    }

    #[test]
    fn long_tail_events_are_burstier() {
        let c = catalog();
        let gaussian_b = ProcessParams::derive(c.by_abbrev(abbrev::BRB).unwrap(), 0).burstiness;
        let longtail_b = ProcessParams::derive(c.by_abbrev(abbrev::MSL).unwrap(), 0).burstiness;
        assert!(longtail_b > gaussian_b);
    }

    #[test]
    fn cache_events_have_cold_start() {
        let c = catalog();
        let icm = ProcessParams::derive(c.by_abbrev(abbrev::ICM).unwrap(), 0);
        assert!(icm.cold_start > 2.0);
        let brb = ProcessParams::derive(c.by_abbrev(abbrev::BRB).unwrap(), 0);
        assert_eq!(brb.cold_start, 1.0);
    }

    #[test]
    fn cold_start_raises_early_counts() {
        let c = catalog();
        let params = ProcessParams::derive(c.by_abbrev(abbrev::ICM).unwrap(), 3);
        let mut early_sum = 0.0;
        let mut late_sum = 0.0;
        for seed in 0..20 {
            let mut state = ProcessState::new(params);
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 200;
            for t in 0..n {
                let (_, count) = state.step(t, n, &mut rng);
                if t < 5 {
                    early_sum += count;
                } else if t >= n - 5 {
                    late_sum += count;
                }
            }
        }
        assert!(
            early_sum > 1.5 * late_sum,
            "early {early_sum} vs late {late_sum}"
        );
    }

    #[test]
    fn memory_events_carry_a_periodic_phase() {
        let c = catalog();
        let msl = ProcessParams::derive(c.by_abbrev(abbrev::MSL).unwrap(), 0);
        assert!(msl.phase_amplitude > 0.2);
        assert!(msl.phase_period >= 32.0);
        // Autocorrelation at the phase period should be visible: the
        // series has structure a pure AR(1) would not.
        let mut state = ProcessState::new(msl);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 2048;
        let zs: Vec<f64> = (0..n).map(|t| state.step(t, n, &mut rng).0).collect();
        let lag = msl.phase_period.round() as usize;
        let acf = cm_stats::descriptive::autocorrelation(&zs, lag).unwrap();
        let rho_phase = acf[lag];
        // AR(1) with rho ~0.6 would decay to ~0.6^lag ~ 0: a clearly
        // positive value at the full period indicates the wave.
        assert!(rho_phase > 0.03, "lag-{lag} autocorrelation {rho_phase}");
    }

    #[test]
    fn counts_are_nonnegative() {
        let c = catalog();
        for info in c.iter().take(30) {
            let mut state = ProcessState::new(ProcessParams::derive(info, 9));
            let mut rng = StdRng::seed_from_u64(1);
            for t in 0..300 {
                let (_, count) = state.step(t, 300, &mut rng);
                assert!(count >= 0.0);
            }
        }
    }

    #[test]
    fn active_events_never_emit_exact_zero_counts() {
        // Exact zero is the MLPX missing-value signature (unobserved
        // subslice); ground truth for an active event must stay above
        // it, even for high-CV processes whose deep AR(1) excursions
        // used to clamp to 0.0. Regression test for the activity floor.
        let c = catalog();
        for salt in 0..8u64 {
            for info in c.iter().take(40) {
                let mut params = ProcessParams::derive(info, salt);
                params.cv = params.cv.max(1.5); // force clamp-prone regime
                let mut state = ProcessState::new(params);
                let mut rng = StdRng::seed_from_u64(salt);
                for t in 0..400 {
                    let (_, count) = state.step(t, 400, &mut rng);
                    assert!(
                        count > 0.0,
                        "event {} salt {salt} emitted an exact-zero count",
                        info.id()
                    );
                }
            }
        }
    }

    #[test]
    fn subslice_weights_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(5);
        for &(s, b, z) in &[(1usize, 0.0, 0.0), (12, 0.5, 0.0), (12, 0.9, 4.0)] {
            let w = subslice_weights(s, b, z, &mut rng);
            assert_eq!(w.len(), s);
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(w.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn high_burstiness_concentrates_weight() {
        // Averaged over draws: bursty intervals put far more weight in
        // their hottest slice than calm ones.
        let mut rng = StdRng::seed_from_u64(6);
        let mut mean_max = |burstiness: f64, z: f64| {
            let mut rng2 = StdRng::seed_from_u64(rng.gen());
            (0..200)
                .map(|_| {
                    subslice_weights(10, burstiness, z, &mut rng2)
                        .into_iter()
                        .fold(0.0, f64::max)
                })
                .sum::<f64>()
                / 200.0
        };
        let flat = mean_max(0.0, 0.0);
        let spiky = mean_max(0.9, 4.0);
        assert!(spiky > 3.0 * flat, "spiky {spiky} vs flat {flat}");
    }

    #[test]
    fn ar_process_is_autocorrelated() {
        let c = catalog();
        let params = ProcessParams::derive(c.by_abbrev(abbrev::BRB).unwrap(), 0);
        let mut state = ProcessState::new(params);
        let mut rng = StdRng::seed_from_u64(11);
        let zs: Vec<f64> = (0..4000).map(|t| state.step(t, 4000, &mut rng).0).collect();
        let rho_hat = cm_stats::descriptive::autocorrelation(&zs, 1).unwrap()[1];
        assert!(rho_hat > 0.3, "lag-1 autocorrelation {rho_hat}");
    }
}
