//! End-to-end verification of the anomalous-run injector
//! ([`Workload::anomalous_run`]): the ground truth it generates must
//! survive *measurement* — multiplexed PMU sampling of an anomalous
//! run has to remain obviously separated from normal runs, because
//! that measured (not true) data is what the clustering layer sees.

use cm_events::EventCatalog;
use cm_sim::{Benchmark, PmuConfig, Workload};

const SEED: u64 = 7;

/// Measured mean of the benchmark's dominant profile event in one run.
fn measured_dominant_mean(
    workload: &Workload,
    catalog: &EventCatalog,
    benchmark: Benchmark,
    truth: &cm_sim::GeneratedRun,
    run_index: u32,
) -> f64 {
    let events = workload.top_event_ids(catalog, 12);
    let dominant = catalog
        .by_abbrev(benchmark.importance_profile()[0])
        .expect("profile event in catalog")
        .id();
    let run = PmuConfig::default().measure_mlpx(workload, truth, &events, run_index, SEED);
    let series = run
        .record
        .series(dominant)
        .expect("dominant event measured");
    series.mean().expect("non-empty series")
}

#[test]
fn anomalous_runs_stay_separated_after_mlpx_measurement() {
    let catalog = EventCatalog::haswell();
    for benchmark in [Benchmark::Sort, Benchmark::DataCaching] {
        let workload = Workload::new(benchmark, &catalog);
        let normal_max = (0..4)
            .map(|i| {
                let truth = workload.generate_run(i, SEED);
                measured_dominant_mean(&workload, &catalog, benchmark, &truth, i)
            })
            .fold(f64::MIN, f64::max);
        let truth = workload.anomalous_run(1_000_000, SEED);
        let anomalous = measured_dominant_mean(&workload, &catalog, benchmark, &truth, 1_000_000);
        assert!(
            anomalous > 2.0 * normal_max,
            "{benchmark}: measured anomalous mean {anomalous:.0} not separated \
             from normal max {normal_max:.0}"
        );
    }
}

#[test]
fn anomalous_runs_are_deterministic_and_distinct_from_normal() {
    let catalog = EventCatalog::haswell();
    let workload = Workload::new(Benchmark::Kmeans, &catalog);
    let a = workload.anomalous_run(3, 11);
    let b = workload.anomalous_run(3, 11);
    assert_eq!(a.intervals, b.intervals);
    assert_eq!(a.ipc, b.ipc);
    assert_eq!(a.counts, b.counts);
    // Same (index, seed) without injection is a different run.
    let normal = workload.generate_run(3, 11);
    assert_ne!(a.counts, normal.counts);
}
