//! Ground-truth calibration of the `bayes` cleaner.
//!
//! The simulator is the one place where the *exact* per-interval counts
//! exist alongside the multiplexed measurement, so it is where the
//! uncertainty model must prove itself:
//!
//! 1. **Honest intervals** — across ≥ 16 seeded runs, the fraction of
//!    reconstructions whose confidence interval actually contains the
//!    simulated ground truth (the *empirical coverage*) must sit within
//!    ten percentage points of the interval's nominal level.
//! 2. **Point mode untouched** — the `bayes` estimator is an annotation
//!    layer: its reconstructed values are bit-identical to the point
//!    cleaner's, and the full pipeline's importance ranking is unchanged
//!    between the two cleaner kinds at every seed.

use cm_events::EventCatalog;
use cm_ml::SgbrtConfig;
use cm_sim::{PmuConfig, Workload, ALL_BENCHMARKS};
use counterminer::{CleanerKind, CounterMiner, DataCleaner, ImportanceConfig, MinerConfig};

/// Seeds in the coverage sweep (the issue's floor is 16).
const SEEDS: u64 = 16;

/// Tolerance on |empirical − nominal| coverage, in absolute probability
/// (ten percentage points).
const COVERAGE_TOLERANCE: f64 = 0.10;

/// Empirical CI coverage of the bayes reconstructions against the
/// simulator's exact counts, across `SEEDS` runs cycling through the
/// benchmark suite. Also asserts, per series, that the bayes values are
/// bit-identical to the point cleaner's.
#[test]
fn bayes_intervals_cover_the_simulated_truth() {
    let catalog = EventCatalog::haswell();
    let cleaner = DataCleaner::default();
    let pmu = PmuConfig::default();
    let nominal = [0.90, 0.95];
    let mut hits = [0usize; 2];
    let mut total = 0usize;

    for seed in 0..SEEDS {
        let benchmark = ALL_BENCHMARKS[seed as usize % ALL_BENCHMARKS.len()];
        let workload = Workload::new(benchmark, &catalog);
        let events = workload.top_event_ids(&catalog, 12);
        let run = pmu.simulate_mlpx(&workload, &events, 0, seed);

        for (event, series) in run.record.iter() {
            let (point, point_report) = cleaner.clean_series(series).unwrap();
            let (bayes, bayes_report, uncertainty) = cleaner.clean_series_bayes(series).unwrap();

            // The annotation layer must not perturb a single bit.
            assert_eq!(
                point_report, bayes_report,
                "reports diverged at seed {seed}"
            );
            let point_bits: Vec<u64> = point.values().iter().map(|v| v.to_bits()).collect();
            let bayes_bits: Vec<u64> = bayes.values().iter().map(|v| v.to_bits()).collect();
            assert_eq!(point_bits, bayes_bits, "values diverged at seed {seed}");
            // One reconstruction per touched index: an outlier
            // replacement supersedes a fill at the same index, so the
            // count sits between the larger tally and the sum.
            let tallied = point_report.outliers_replaced + point_report.missing_filled;
            assert!(uncertainty.reconstructions.len() <= tallied);
            assert!(
                uncertainty.reconstructions.len()
                    >= point_report
                        .outliers_replaced
                        .max(point_report.missing_filled)
            );

            // Score every reconstruction against the exact count.
            let truth = &run.true_counts[&event];
            for rec in &uncertainty.reconstructions {
                let actual = truth.values()[rec.index];
                total += 1;
                for (slot, &confidence) in nominal.iter().enumerate() {
                    let (lo, hi) = rec.posterior().interval(confidence);
                    if (lo..=hi).contains(&actual) {
                        hits[slot] += 1;
                    }
                }
            }
        }
    }

    // The dirty simulated PMU must have produced a meaningful sample of
    // reconstructions, or the coverage estimate means nothing.
    assert!(
        total >= 100,
        "only {total} reconstructions across {SEEDS} seeds"
    );
    for (slot, &confidence) in nominal.iter().enumerate() {
        let empirical = hits[slot] as f64 / total as f64;
        assert!(
            (empirical - confidence).abs() <= COVERAGE_TOLERANCE,
            "nominal {confidence:.2} vs empirical {empirical:.3} over {total} \
             reconstructions — interval is not honest",
        );
    }
}

fn sweep_config(seed: u64, cleaner_kind: CleanerKind) -> MinerConfig {
    MinerConfig {
        runs_per_benchmark: 1,
        events_to_measure: Some(14),
        cleaner_kind,
        importance: ImportanceConfig {
            sgbrt: SgbrtConfig {
                n_trees: 30,
                ..SgbrtConfig::default()
            },
            prune_step: 3,
            min_events: 8,
            seed,
            ..ImportanceConfig::default()
        },
        seed,
        ..MinerConfig::default()
    }
}

/// The full pipeline's ranking is the same under both cleaner kinds at
/// every seed — `bayes` only adds the uncertainty annotation.
#[test]
fn point_rankings_survive_the_bayes_annotation() {
    for seed in 0..4u64 {
        let benchmark = ALL_BENCHMARKS[seed as usize % ALL_BENCHMARKS.len()];
        let point = CounterMiner::new(sweep_config(seed, CleanerKind::Point))
            .analyze(benchmark)
            .unwrap();
        let bayes = CounterMiner::new(sweep_config(seed, CleanerKind::Bayes))
            .analyze(benchmark)
            .unwrap();
        assert_eq!(
            point.eir.ranking, bayes.eir.ranking,
            "ranking moved at seed {seed}"
        );
        assert_eq!(
            point.outliers_replaced, bayes.outliers_replaced,
            "cleaning tallies moved at seed {seed}"
        );
        assert!(point.eir.uncertainty.is_none());
        let uncertainty = bayes.eir.uncertainty.as_ref().expect("bayes annotates");
        assert!(
            (0.0..=1.0).contains(&uncertainty.stability),
            "stability {} out of range at seed {seed}",
            uncertainty.stability
        );
    }
}
