//! Property-based tests for the workload/PMU simulator: determinism,
//! conservation, and measurement sanity over arbitrary seeds.

use cm_events::EventCatalog;
use cm_sim::{Benchmark, ColocatedWorkload, PmuConfig, Workload, ALL_BENCHMARKS};
use proptest::prelude::*;

fn catalog() -> EventCatalog {
    EventCatalog::haswell()
}

fn any_benchmark() -> impl Strategy<Value = Benchmark> {
    (0usize..ALL_BENCHMARKS.len()).prop_map(|i| ALL_BENCHMARKS[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generated_runs_are_deterministic(b in any_benchmark(), seed in 0u64..1000, run in 0u32..4) {
        let c = catalog();
        let w = Workload::new(b, &c);
        let x = w.generate_run(run, seed);
        let y = w.generate_run(run, seed);
        prop_assert_eq!(x.intervals, y.intervals);
        prop_assert_eq!(x.ipc, y.ipc);
        prop_assert_eq!(&x.counts[0], &y.counts[0]);
    }

    #[test]
    fn true_counts_are_finite_and_nonnegative(b in any_benchmark(), seed in 0u64..200) {
        let c = catalog();
        let w = Workload::new(b, &c);
        let run = w.generate_run(0, seed);
        for series in run.counts.iter().take(40) {
            for &v in series {
                prop_assert!(v.is_finite());
                prop_assert!(v >= 0.0);
            }
        }
        prop_assert!(run.ipc.iter().all(|&v| v > 0.0 && v.is_finite()));
    }

    #[test]
    fn ocoe_measurement_stays_close_to_truth(b in any_benchmark(), seed in 0u64..100) {
        let c = catalog();
        let w = Workload::new(b, &c);
        let events = w.top_event_ids(&c, 6);
        let run = PmuConfig::default().simulate_ocoe(&w, &events, 0, seed);
        for (event, measured) in run.record.iter() {
            let truth = &run.true_counts[&event];
            for (m, t) in measured.iter().zip(truth.iter()) {
                if t > 1.0 {
                    prop_assert!((m - t).abs() / t < 0.05);
                }
            }
        }
    }

    #[test]
    fn mlpx_measurement_is_deterministic(seed in 0u64..100) {
        let c = catalog();
        let w = Workload::new(Benchmark::Join, &c);
        let events = w.top_event_ids(&c, 12);
        let pmu = PmuConfig::default();
        let a = pmu.simulate_mlpx(&w, &events, 0, seed);
        let b = pmu.simulate_mlpx(&w, &events, 0, seed);
        for (event, series) in a.record.iter() {
            prop_assert_eq!(series, b.record.series(event).unwrap());
        }
    }

    #[test]
    fn colocated_counts_dominate_each_member(seed in 0u64..50) {
        let c = catalog();
        let pair = ColocatedWorkload::new(Benchmark::DataCaching, Benchmark::WebSearch, &c);
        let merged = pair.generate_run(0, seed);
        let solo = Workload::new(Benchmark::DataCaching, &c).generate_run(0, seed);
        let n = merged.intervals.min(solo.intervals);
        for e in (0..c.len()).step_by(23) {
            for t in 0..n {
                prop_assert!(
                    merged.counts[e][t] >= solo.counts[e][t] - 1e-9,
                    "event {e} interval {t}"
                );
            }
        }
    }
}
