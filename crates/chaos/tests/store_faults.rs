//! The 64-seed store fault sweep.
//!
//! Every seed derives a different schedule of injected I/O faults
//! (short reads, failed/short writes, fsync failures, silent bit
//! flips). Under every schedule the columnar store must uphold:
//!
//! 1. no panic — every operation returns `Ok` or a typed `StoreError`;
//! 2. no lies — data read back `Ok` is bit-identical to what was
//!    written;
//! 3. no torn state — after faults stop, reopening the store yields
//!    either a fully intact committed state or a typed error, never a
//!    half-written hybrid that decodes to wrong values.

use cm_chaos::FaultFs;
use cm_events::{EventId, SampleMode};
use cm_store::{CacheConfig, SeriesKey, Store, StoreError};
use std::path::PathBuf;
use std::sync::Arc;

const SEEDS: u64 = 64;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cm_chaos_sweep_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn key(run: u32, event: usize) -> SeriesKey {
    SeriesKey::new("chaos", run, SampleMode::Mlpx, EventId::new(event))
}

/// The payloads cover both codecs: integral (delta+varint) and
/// fractional (raw f64), plus the 2^52 boundary.
fn payloads() -> Vec<(SeriesKey, Vec<f64>)> {
    vec![
        (key(0, 0), vec![1.0, 2.0, 3.0, 4.0]),
        (key(0, 1), vec![0.5, -7.25, 1e-3]),
        (key(0, 2), vec![4503599627370496.0, -4503599627370496.0]),
        (key(1, 0), (0..100).map(|i| (i * i) as f64).collect()),
    ]
}

#[test]
fn store_survives_64_fault_seeds() {
    let dir = temp_dir("survive");
    let mut injected_total = 0u64;
    let mut commits_ok = 0u32;

    for seed in 0..SEEDS {
        let path = dir.join(format!("s{seed}.cmstore"));
        let fs = Arc::new(FaultFs::new(seed));

        // Phase 1: write under fire. Any Err must be a typed
        // StoreError (the ? operator never panics through this fn).
        let write_result = (|| -> Result<(), StoreError> {
            let mut store = Store::open_with_vfs(&path, CacheConfig::default(), fs.clone())?;
            for (k, v) in payloads() {
                store.append_series(k, &v)?;
            }
            store.commit()?;
            // Read back everything through the faulty filesystem too.
            for (k, v) in payloads() {
                let got = store.read_series(&k)?;
                assert_eq!(got.as_slice(), v.as_slice(), "seed {seed}: store lied");
            }
            Ok(())
        })();
        if write_result.is_ok() {
            commits_ok += 1;
        }
        injected_total += fs.injected();

        // Phase 2: recovery with faults disarmed. The store file either
        // opens to the exact committed data or reports a typed error
        // (silent bit flips are *expected* to surface as checksum
        // mismatches) — it must never decode to wrong values.
        fs.disarm();
        match Store::open_with_vfs(&path, CacheConfig::default(), fs.clone()) {
            Err(_) => {} // typed corruption report: acceptable
            Ok(recovered) => {
                if recovered.series_count() > 0 {
                    for (k, v) in payloads() {
                        // An Err here is a typed corruption report and
                        // therefore acceptable; Ok must be exact.
                        if let Ok(got) = recovered.read_series(&k) {
                            assert_eq!(
                                got.as_slice(),
                                v.as_slice(),
                                "seed {seed}: recovered store lied"
                            );
                        }
                    }
                }
            }
        }
    }

    // The sweep must actually exercise both regimes: some seeds inject
    // faults (or no schedule fired inside the workload), and some
    // commits still succeed. All-failures or all-successes would mean
    // the harness is miswired.
    assert!(injected_total > 0, "no seed injected any fault");
    assert!(commits_ok > 0, "no seed completed a commit");
    assert!(
        commits_ok < SEEDS as u32,
        "every seed committed cleanly — faults never reached the store"
    );
}

/// A fault during a re-commit must leave the previously committed
/// generation fully readable (the atomic tmp+rename contract).
#[test]
fn failed_recommit_preserves_previous_generation() {
    let dir = temp_dir("previous_gen");
    let mut exercised = 0u32;

    for seed in 0..SEEDS {
        let path = dir.join(format!("g{seed}.cmstore"));
        // Generation 1 is written clean.
        {
            let mut store = Store::open(&path).unwrap();
            store.append_series(key(0, 0), &[10.0, 20.0, 30.0]).unwrap();
            store.commit().unwrap();
        }
        // Generation 2 is attempted under fire and may fail.
        let fs = Arc::new(FaultFs::new(seed));
        let second = (|| -> Result<(), StoreError> {
            let mut store = Store::open_with_vfs(&path, CacheConfig::default(), fs.clone())?;
            store.append_series(key(5, 5), &[1.5, 2.5])?;
            store.commit()?;
            Ok(())
        })();

        if second.is_err() {
            exercised += 1;
            // The first generation must still be intact on disk — a
            // failed commit never tears the committed file. (A silent
            // bit flip cannot be the cause of an Err: flips report
            // success, so an Err here means the tmp file never landed.)
            let store = Store::open(&path).unwrap();
            assert_eq!(
                store.read_series(&key(0, 0)).unwrap().as_slice(),
                &[10.0, 20.0, 30.0],
                "seed {seed}: failed re-commit damaged the previous generation"
            );
        }
    }
    assert!(exercised > 0, "no seed made the second commit fail");
}
