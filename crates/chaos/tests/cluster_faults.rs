//! The 64-seed fault sweep for the `cluster` analysis mode.
//!
//! `analyze_cluster` crosses the store seam many times — one ingest
//! per benchmark, then a multi-snapshot load — so a fault schedule has
//! plenty of opportunities to fire mid-pipeline. Under every seed the
//! mode must either complete with the *same report a clean store
//! produces* or fail with a typed error; a panic or a silently
//! different clustering is the only wrong answer.

use cm_chaos::FaultFs;
use cm_sim::Benchmark;
use cm_store::{CacheConfig, Store};
use counterminer::{ClusterConfig, ClusterReport, CmError, CounterMiner, MinerConfig};
use std::path::PathBuf;
use std::sync::Arc;

const SEEDS: u64 = 64;

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cm_chaos_cluster_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn miner() -> CounterMiner {
    CounterMiner::new(MinerConfig {
        runs_per_benchmark: 1,
        events_to_measure: Some(10),
        ..MinerConfig::default()
    })
}

const BENCHMARKS: [Benchmark; 3] = [Benchmark::Sort, Benchmark::Wordcount, Benchmark::Kmeans];

fn cluster_cfg() -> ClusterConfig {
    ClusterConfig {
        k: 2,
        inject_anomalies: 1,
        ..ClusterConfig::default()
    }
}

#[test]
fn cluster_mode_survives_64_fault_seeds() {
    let dir = temp_dir();

    // The oracle: the report a fault-free store produces.
    let reference: ClusterReport = {
        let mut store = Store::open(dir.join("clean.cmstore")).unwrap();
        miner()
            .analyze_cluster(&BENCHMARKS, &mut store, &cluster_cfg())
            .unwrap()
    };

    let mut completed = 0u32;
    let mut failed = 0u32;
    let mut injected_total = 0u64;
    for seed in 0..SEEDS {
        let path = dir.join(format!("s{seed}.cmstore"));
        let fs = Arc::new(FaultFs::new(seed));
        let result = (|| -> Result<ClusterReport, CmError> {
            let mut store = Store::open_with_vfs(&path, CacheConfig::default(), fs.clone())?;
            miner().analyze_cluster(&BENCHMARKS, &mut store, &cluster_cfg())
        })();
        injected_total += fs.injected();
        match result {
            Ok(report) => {
                completed += 1;
                // A completed run under faults must match the clean
                // oracle exactly — retried I/O may not change the data.
                assert_eq!(report, reference, "seed {seed}: clustering lied");
            }
            Err(_) => failed += 1,
        }
        let _ = std::fs::remove_file(&path);
    }

    assert_eq!(completed + failed, SEEDS as u32);
    assert!(injected_total > 0, "sweep injected no faults at all");
    // The sweep is only meaningful if both regimes occur: schedules
    // mild enough to complete and schedules harsh enough to fail.
    assert!(completed > 0, "no seed completed ({failed} failed)");
    assert!(failed > 0, "no seed failed ({completed} completed)");
    let _ = std::fs::remove_dir_all(&dir);
}
