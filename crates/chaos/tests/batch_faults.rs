//! The 64-seed fault sweep for the *batched* read path.
//!
//! [`Store::read_series_batch`] reads whole coalesced regions and fans
//! the decode across worker threads, so it crosses the faulty
//! filesystem seam in bigger, fewer operations than per-key reads.
//! Under every seeded fault schedule it must uphold the same contract:
//! every call returns `Ok` with bit-exact data or a typed
//! [`StoreError`] — never a panic, never silently wrong values.

use cm_chaos::FaultFs;
use cm_events::{EventId, SampleMode};
use cm_store::{CacheConfig, SeriesKey, Store, StoreError};
use std::path::PathBuf;
use std::sync::Arc;

const SEEDS: u64 = 64;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cm_chaos_batch_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn key(run: u32, event: usize) -> SeriesKey {
    SeriesKey::new("chaos", run, SampleMode::Mlpx, EventId::new(event))
}

/// Both codecs plus the ±2^52 delta boundary and signed zero.
fn payloads() -> Vec<(SeriesKey, Vec<f64>)> {
    vec![
        (key(0, 0), vec![1.0, 2.0, 3.0, 4.0]),
        (key(0, 1), vec![0.5, -7.25, 1e-3]),
        (key(0, 2), vec![4503599627370496.0, -4503599627370496.0]),
        (key(0, 3), vec![-0.0, 0.0]),
        (key(1, 0), (0..100).map(|i| (i * i) as f64).collect()),
    ]
}

fn assert_bits_eq(got: &[f64], want: &[f64], seed: u64) {
    assert_eq!(got.len(), want.len(), "seed {seed}: length lied");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.to_bits(), w.to_bits(), "seed {seed}: batch read lied");
    }
}

/// Batched reads under fire: every seed writes a clean store, then
/// reads it back through a fault-injecting filesystem — with the cache
/// disabled so every batch hits the Vfs seam again.
#[test]
fn batched_reads_survive_64_fault_seeds() {
    let dir = temp_dir("read");
    let no_cache = CacheConfig {
        capacity_bytes: 0,
        shards: 1,
    };
    let mut injected_total = 0u64;
    let mut reads_ok = 0u32;
    let mut reads_err = 0u32;

    for seed in 0..SEEDS {
        let path = dir.join(format!("s{seed}.cmstore"));
        {
            let mut store = Store::open_with(&path, CacheConfig::default()).unwrap();
            for (k, v) in payloads() {
                store.append_series(k, &v).unwrap();
            }
            store.commit().unwrap();
        }

        let fs = Arc::new(FaultFs::new(seed));
        let keys: Vec<SeriesKey> = payloads().into_iter().map(|(k, _)| k).collect();
        let result = (|| -> Result<(), StoreError> {
            let store = Store::open_with_vfs(&path, no_cache, fs.clone())?;
            // Two rounds so fault schedules that fire late in the op
            // window still land inside a batched read.
            for _ in 0..2 {
                let batch = store.read_series_batch(&keys)?;
                for (got, (_, want)) in batch.iter().zip(payloads()) {
                    assert_bits_eq(got, &want, seed);
                }
            }
            Ok(())
        })();
        match result {
            Ok(()) => reads_ok += 1,
            Err(_) => reads_err += 1, // typed error: acceptable under fire
        }
        injected_total += fs.injected();
    }

    // The sweep must exercise both regimes, or the harness is miswired.
    assert!(injected_total > 0, "no seed injected any fault");
    assert!(reads_ok > 0, "no seed completed a batched read");
    assert!(reads_err > 0, "faults never reached the batched read path");
}
