//! Adversarial input generators.
//!
//! Counter series that real collectors occasionally produce but unit
//! tests rarely think to write: empty, single-sample, perfectly
//! constant, saturated with NaN, nothing but multiplexing gaps, values
//! at the `2^52` delta-codec boundary, ±∞. Every generator is a pure
//! function of a [`ChaosRng`], so a failing case replays from its seed.

use crate::ChaosRng;

/// Largest magnitude the store's delta codec encodes exactly (`2^52`);
/// values straddling it exercise the codec's raw-f64 fallback.
pub const DELTA_BOUNDARY: f64 = 4_503_599_627_370_496.0;

/// The family of adversarial shapes [`series`] can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// No samples at all.
    Empty,
    /// Exactly one sample.
    Single,
    /// Every sample identical (zero variance).
    Constant,
    /// Every sample NaN.
    AllNan,
    /// Every sample zero — a run that was multiplexed out entirely.
    AllMissing,
    /// Finite data with ±∞ spikes mixed in.
    Infinities,
    /// Values hugging the `±2^52` codec boundary, plus `-0.0`.
    Boundary,
    /// Plausible data interrupted by pathological multiplexing gap
    /// patterns (long zero bursts, alternating gaps).
    MlpxGaps,
    /// Plausible data with extreme-magnitude outlier spikes.
    Spiky,
}

/// All shapes, for exhaustive sweeps.
pub const SHAPES: [Shape; 9] = [
    Shape::Empty,
    Shape::Single,
    Shape::Constant,
    Shape::AllNan,
    Shape::AllMissing,
    Shape::Infinities,
    Shape::Boundary,
    Shape::MlpxGaps,
    Shape::Spiky,
];

/// Generates one series of the given shape.
///
/// # Examples
///
/// ```
/// use cm_chaos::{gen, ChaosRng};
///
/// let mut rng = ChaosRng::new(3);
/// let s = gen::series(&mut rng, gen::Shape::AllNan);
/// assert!(!s.is_empty());
/// assert!(s.iter().all(|v| v.is_nan()));
/// ```
pub fn series(rng: &mut ChaosRng, shape: Shape) -> Vec<f64> {
    let len = 8 + rng.below(56) as usize;
    let level = 1.0 + rng.next_f64() * 99.0;
    match shape {
        Shape::Empty => Vec::new(),
        Shape::Single => vec![level],
        Shape::Constant => vec![level; len],
        Shape::AllNan => vec![f64::NAN; len],
        Shape::AllMissing => vec![0.0; len],
        Shape::Infinities => {
            let mut v = plausible(rng, len, level);
            for x in v.iter_mut() {
                if rng.chance(0.2) {
                    *x = if rng.chance(0.5) {
                        f64::INFINITY
                    } else {
                        f64::NEG_INFINITY
                    };
                }
            }
            v
        }
        Shape::Boundary => (0..len)
            .map(|i| {
                let off = rng.below(3) as f64 - 1.0;
                match i % 4 {
                    0 => DELTA_BOUNDARY + off,
                    1 => -DELTA_BOUNDARY - off,
                    2 => -0.0,
                    _ => off,
                }
            })
            .collect(),
        Shape::MlpxGaps => {
            let mut v = plausible(rng, len, level);
            // A long burst of dropped intervals…
            let burst = rng.below(len as u64 / 2) as usize;
            let start = rng.below((len - burst) as u64) as usize;
            for x in &mut v[start..start + burst] {
                *x = 0.0;
            }
            // …and alternating single-interval gaps elsewhere.
            let stride = 2 + rng.below(3) as usize;
            for i in (0..len).step_by(stride) {
                if rng.chance(0.5) {
                    v[i] = 0.0;
                }
            }
            v
        }
        Shape::Spiky => {
            let mut v = plausible(rng, len, level);
            for x in v.iter_mut() {
                if rng.chance(0.1) {
                    *x *= 1.0 + rng.next_f64() * 1e6;
                }
            }
            v
        }
    }
}

/// Generates a seeded shape pick and its series.
pub fn any_series(rng: &mut ChaosRng) -> (Shape, Vec<f64>) {
    let shape = SHAPES[rng.below(SHAPES.len() as u64) as usize];
    (shape, series(rng, shape))
}

/// An unremarkable noisy-but-clean series around `level`.
fn plausible(rng: &mut ChaosRng, len: usize, level: f64) -> Vec<f64> {
    (0..len)
        .map(|_| level * (0.9 + rng.next_f64() * 0.2))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_have_their_defining_property() {
        let mut rng = ChaosRng::new(1);
        assert!(series(&mut rng, Shape::Empty).is_empty());
        assert_eq!(series(&mut rng, Shape::Single).len(), 1);
        let c = series(&mut rng, Shape::Constant);
        assert!(c.windows(2).all(|w| w[0] == w[1]) && c.len() > 1);
        assert!(series(&mut rng, Shape::AllNan).iter().all(|v| v.is_nan()));
        assert!(series(&mut rng, Shape::AllMissing)
            .iter()
            .all(|&v| v == 0.0));
        assert!(series(&mut rng, Shape::Infinities)
            .iter()
            .any(|v| v.is_infinite()));
        let b = series(&mut rng, Shape::Boundary);
        assert!(b.iter().any(|&v| v.abs() >= DELTA_BOUNDARY));
        assert!(b.iter().any(|&v| v == 0.0 && v.is_sign_negative()));
        assert!(series(&mut rng, Shape::MlpxGaps).contains(&0.0));
        let s = series(&mut rng, Shape::Spiky);
        let max = s.iter().cloned().fold(0.0_f64, f64::max);
        let min = s.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 100.0, "spikes dominate: {min}..{max}");
    }

    #[test]
    fn generation_replays_from_seed() {
        // Compare bit patterns: NaN == NaN is false, but replay must be
        // bit-exact including NaNs.
        let run = |seed| {
            let mut rng = ChaosRng::new(seed);
            (0..20)
                .map(|_| {
                    let (shape, v) = any_series(&mut rng);
                    (shape, v.iter().map(|x| x.to_bits()).collect::<Vec<_>>())
                })
                .collect::<Vec<_>>()
        };
        let a = run(99);
        assert_eq!(a, run(99));
        assert_ne!(a, run(100));
        // All shapes appear across a modest sweep.
        let mut rng = ChaosRng::new(0);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(format!("{:?}", any_series(&mut rng).0));
        }
        assert_eq!(seen.len(), SHAPES.len());
    }
}
