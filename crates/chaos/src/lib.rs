//! Deterministic fault injection and adversarial input generation for
//! CounterMiner.
//!
//! Hardware-counter pipelines fail in the field the way all data
//! pipelines do: a collector emits an empty or constant or NaN-ridden
//! series, a disk fills mid-commit, a sector rots under a committed
//! store. This crate packages those failures as *reproducible test
//! inputs* so the rest of the workspace can prove one invariant:
//! **typed error or correct result — never a panic, never a NaN
//! ranking, never silently wrong data.**
//!
//! Three pieces, all driven by a single `u64` seed:
//!
//! * [`ChaosRng`] — a zero-dependency splittable SplitMix64 PRNG; every
//!   schedule and input below is a pure function of its seed, so any
//!   failure replays exactly.
//! * [`gen`] — generators for adversarial counter series: empty,
//!   single-sample, constant, all-NaN, all-missing, ±∞ spikes, values
//!   at the delta-codec's `2^52` boundary, pathological multiplexing
//!   gap patterns.
//! * [`FaultFs`] — a [`cm_store::Vfs`] wrapper that injects short
//!   reads, failed and short writes, fsync failures, and silent
//!   single-bit corruption into the columnar store's I/O, tallying
//!   every injection on `cm_obs` counters under the `chaos.*`
//!   namespace.
//!
//! # Examples
//!
//! A seeded end-to-end store torture step:
//!
//! ```
//! use cm_chaos::FaultFs;
//! use cm_store::{CacheConfig, Store};
//! use std::sync::Arc;
//!
//! let dir = std::env::temp_dir().join(format!("cm_chaos_doc_{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let fs = Arc::new(FaultFs::new(0xC0FFEE));
//! let outcome = Store::open_with_vfs(dir.join("t.cmstore"), CacheConfig::default(), fs.clone());
//! // The invariant under fault injection: a typed result, never a panic.
//! match outcome {
//!     Ok(_) => {}
//!     Err(e) => println!("typed store error: {e}"),
//! }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod fault;
pub mod gen;
mod rng;

pub use fault::{FaultFs, FaultKind};
pub use rng::ChaosRng;
