//! A tiny seeded, splittable PRNG.
//!
//! Fault schedules and adversarial inputs must be reproducible from a
//! single `u64` seed — a failing chaos run is only useful if its exact
//! fault sequence can be replayed. [`ChaosRng`] is a SplitMix64
//! generator: one multiply-xorshift pipeline per draw, no external
//! dependencies, and a [`split`](ChaosRng::split) operation that derives
//! an independent stream so sub-harnesses (one per store file, one per
//! generated series, …) cannot perturb each other's sequences.

/// A seeded SplitMix64 generator.
///
/// # Examples
///
/// ```
/// use cm_chaos::ChaosRng;
///
/// let mut a = ChaosRng::new(7);
/// let mut b = ChaosRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosRng {
    state: u64,
}

/// Weyl-sequence increment (the golden-ratio constant of SplitMix64).
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl ChaosRng {
    /// Creates a generator from a seed; equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        ChaosRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits scaled into the unit interval.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `[0, bound)`; returns 0 for `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            // Modulo bias is irrelevant for fault scheduling.
            self.next_u64() % bound
        }
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Derives an independent generator, advancing this one by one draw.
    ///
    /// # Examples
    ///
    /// ```
    /// use cm_chaos::ChaosRng;
    ///
    /// let mut parent = ChaosRng::new(1);
    /// let mut child = parent.split();
    /// // The child stream is distinct from the parent's continuation.
    /// assert_ne!(child.next_u64(), parent.clone().next_u64());
    /// ```
    pub fn split(&mut self) -> ChaosRng {
        // Re-mix the draw so parent and child Weyl sequences never align.
        ChaosRng::new(self.next_u64().wrapping_mul(GAMMA) ^ 0xA5A5_A5A5_A5A5_A5A5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let draws = |seed| {
            let mut r = ChaosRng::new(seed);
            (0..8).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draws(42), draws(42));
        assert_ne!(draws(42), draws(43));
    }

    #[test]
    fn unit_interval_and_bounds_hold() {
        let mut r = ChaosRng::new(9);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            assert!(r.below(7) < 7);
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn split_streams_diverge() {
        let mut parent = ChaosRng::new(5);
        let mut a = parent.split();
        let mut b = parent.split();
        let sa: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = ChaosRng::new(11);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
