//! Seeded fault injection for the store's filesystem seam.
//!
//! [`FaultFs`] wraps any [`Vfs`] (the real filesystem by default) and
//! injects a deterministic, seed-derived schedule of I/O faults into
//! the files it opens: short reads, failed writes (`ENOSPC`-style),
//! short writes, fsync failures, and silent single-bit corruption of
//! written data. The schedule is a pure function of the seed, so a
//! failing chaos run replays exactly.
//!
//! Every injected fault is tallied locally (see
//! [`FaultFs::injected`]) and on the [`cm_obs`] counters under the
//! `chaos.*` namespace (`chaos.faults.injected`, plus one counter per
//! kind such as `chaos.faults.bit_flip`).

use crate::ChaosRng;
use cm_store::{RealFs, Vfs, VfsFile};
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};

/// What kind of fault was injected into an I/O operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A positioned read reported fewer bytes than requested.
    ShortRead,
    /// A write failed outright, as when the device is out of space.
    FailWrite,
    /// A write persisted only a prefix of the buffer, then failed.
    ShortWrite,
    /// `fsync` reported failure after the data was buffered.
    FailSync,
    /// One bit of the written payload was flipped — *silently*; the
    /// write itself reports success, modeling firmware/media corruption.
    BitFlip,
}

impl FaultKind {
    fn counter(self) -> &'static str {
        match self {
            FaultKind::ShortRead => "chaos.faults.short_read",
            FaultKind::FailWrite => "chaos.faults.fail_write",
            FaultKind::ShortWrite => "chaos.faults.short_write",
            FaultKind::FailSync => "chaos.faults.fail_sync",
            FaultKind::BitFlip => "chaos.faults.bit_flip",
        }
    }
}

/// One scheduled fault: fires at the `op`-th counted I/O operation.
/// `flavor` picks among the kinds valid for that operation's type and
/// `aux` parameterizes it (bit index, short-write split point).
#[derive(Debug, Clone, Copy)]
struct Scheduled {
    op: u64,
    flavor: u64,
    aux: u64,
}

#[derive(Debug)]
struct State {
    ops: u64,
    armed: bool,
    schedule: Vec<Scheduled>,
    injected: Vec<FaultKind>,
}

impl State {
    /// Returns the fault scheduled for the current operation, if any,
    /// and advances the operation counter.
    fn tick(&mut self) -> Option<Scheduled> {
        let op = self.ops;
        self.ops += 1;
        if !self.armed {
            return None;
        }
        self.schedule.iter().find(|s| s.op == op).copied()
    }

    fn record(&mut self, kind: FaultKind) {
        self.injected.push(kind);
        cm_obs::counter_add("chaos.faults.injected", 1);
        cm_obs::counter_add(kind.counter(), 1);
    }
}

/// How many leading I/O operations the seeded schedule can target.
/// A store open + commit + read-back lands well inside this window.
const SCHEDULE_WINDOW: u64 = 48;

/// A fault-injecting [`Vfs`] wrapper.
///
/// # Examples
///
/// ```
/// use cm_chaos::FaultFs;
/// use cm_store::{CacheConfig, Store};
/// use std::sync::Arc;
///
/// let dir = std::env::temp_dir().join(format!("cm_faultfs_doc_{}", std::process::id()));
/// std::fs::create_dir_all(&dir).unwrap();
/// let fs = Arc::new(FaultFs::new(1));
/// // Whatever the injected faults do, the store never panics: every
/// // outcome is Ok or a typed StoreError.
/// match Store::open_with_vfs(dir.join("doc.cmstore"), CacheConfig::default(), fs.clone()) {
///     Ok(_) | Err(_) => {}
/// }
/// ```
#[derive(Debug)]
pub struct FaultFs {
    inner: Arc<dyn Vfs>,
    state: Arc<Mutex<State>>,
}

impl FaultFs {
    /// Wraps the real filesystem with the fault schedule derived from
    /// `seed`.
    pub fn new(seed: u64) -> Self {
        Self::wrapping(Arc::new(RealFs), seed)
    }

    /// Wraps an arbitrary inner [`Vfs`] with the schedule for `seed`.
    pub fn wrapping(inner: Arc<dyn Vfs>, seed: u64) -> Self {
        let mut rng = ChaosRng::new(seed);
        let n = 1 + rng.below(3); // 1..=3 faults per seed
        let mut schedule = Vec::with_capacity(n as usize);
        for _ in 0..n {
            schedule.push(Scheduled {
                op: rng.below(SCHEDULE_WINDOW),
                flavor: rng.next_u64(),
                aux: rng.next_u64(),
            });
        }
        FaultFs {
            inner,
            state: Arc::new(Mutex::new(State {
                ops: 0,
                armed: true,
                schedule,
                injected: Vec::new(),
            })),
        }
    }

    /// Stops injecting; subsequent I/O passes through untouched. Used
    /// by recovery checks that must observe the store's true state.
    pub fn disarm(&self) {
        lock(&self.state).armed = false;
    }

    /// Number of faults injected so far.
    pub fn injected(&self) -> u64 {
        lock(&self.state).injected.len() as u64
    }

    /// The kinds injected so far, in injection order.
    pub fn injected_kinds(&self) -> Vec<FaultKind> {
        lock(&self.state).injected.clone()
    }
}

/// Never propagates lock poisoning: a chaos harness must keep working
/// after a panicking test thread.
fn lock(state: &Mutex<State>) -> MutexGuard<'_, State> {
    state.lock().unwrap_or_else(|e| e.into_inner())
}

fn injected_err(what: &str) -> io::Error {
    io::Error::other(format!("injected fault: {what}"))
}

impl Vfs for FaultFs {
    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(FaultFile {
            inner: self.inner.open(path)?,
            state: self.state.clone(),
        }))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(FaultFile {
            inner: self.inner.create(path)?,
            state: self.state.clone(),
        }))
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.inner.remove(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.inner.rename(from, to)
    }
}

/// A file handle whose data operations consult the shared fault
/// schedule. Operations are counted across every file the owning
/// [`FaultFs`] opened, so one seed exercises one global fault sequence.
#[derive(Debug)]
struct FaultFile {
    inner: Box<dyn VfsFile>,
    state: Arc<Mutex<State>>,
}

impl VfsFile for FaultFile {
    fn len(&self) -> io::Result<u64> {
        // Metadata reads are not interesting fault targets.
        self.inner.len()
    }

    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        let fired = lock(&self.state).tick();
        if fired.is_some() {
            lock(&self.state).record(FaultKind::ShortRead);
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "injected fault: short read",
            ));
        }
        self.inner.read_exact_at(buf, offset)
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let fired = lock(&self.state).tick();
        match fired {
            None => self.inner.write_all(buf),
            Some(s) => match s.flavor % 3 {
                0 => {
                    lock(&self.state).record(FaultKind::FailWrite);
                    Err(injected_err("no space left on device"))
                }
                1 => {
                    lock(&self.state).record(FaultKind::ShortWrite);
                    let keep = (s.aux as usize) % (buf.len() + 1);
                    self.inner.write_all(&buf[..keep])?;
                    Err(injected_err("short write"))
                }
                _ => {
                    lock(&self.state).record(FaultKind::BitFlip);
                    let mut corrupt = buf.to_vec();
                    if !corrupt.is_empty() {
                        let bit = (s.aux as usize) % (corrupt.len() * 8);
                        corrupt[bit / 8] ^= 1 << (bit % 8);
                    }
                    // Silent: the caller sees success.
                    self.inner.write_all(&corrupt)
                }
            },
        }
    }

    fn sync_all(&mut self) -> io::Result<()> {
        let fired = lock(&self.state).tick();
        if fired.is_some() {
            lock(&self.state).record(FaultKind::FailSync);
            return Err(injected_err("fsync failed"));
        }
        self.inner.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cm_fault_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let shape = |seed| {
            let fs = FaultFs::new(seed);
            let sched: Vec<_> = lock(&fs.state)
                .schedule
                .iter()
                .map(|s| (s.op, s.flavor, s.aux))
                .collect();
            sched
        };
        assert_eq!(shape(7), shape(7));
        assert_ne!(shape(7), shape(8));
    }

    #[test]
    fn faults_fire_and_are_tallied() {
        let dir = temp_dir("tally");
        // Scan seeds until one injects on the write path, proving the
        // schedule connects to real I/O (most seeds fire within the
        // first few ops of a small write workload).
        let mut fired = false;
        for seed in 0..32 {
            let fs = FaultFs::new(seed);
            let mut f = Vfs::create(&fs, &dir.join(format!("f{seed}"))).unwrap();
            for _ in 0..SCHEDULE_WINDOW {
                let _ = f.write_all(b"0123456789abcdef");
            }
            let _ = f.sync_all();
            if fs.injected() > 0 {
                fired = true;
                assert!(!fs.injected_kinds().is_empty());
                break;
            }
        }
        assert!(fired, "no seed in 0..32 injected a fault");
    }

    #[test]
    fn disarm_stops_injection() {
        let dir = temp_dir("disarm");
        let fs = FaultFs::new(3);
        fs.disarm();
        let mut f = Vfs::create(&fs, &dir.join("f")).unwrap();
        for _ in 0..SCHEDULE_WINDOW + 8 {
            f.write_all(b"payload").unwrap();
        }
        f.sync_all().unwrap();
        assert_eq!(fs.injected(), 0);
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_bit() {
        let dir = temp_dir("flip");
        // Find a seed whose first scheduled fault is a bit flip at op 0.
        for seed in 0..256 {
            let fs = FaultFs::new(seed);
            // Match `State::tick` exactly: the *first* entry for op 0 wins.
            let flips_at_zero = lock(&fs.state)
                .schedule
                .iter()
                .find(|s| s.op == 0)
                .is_some_and(|s| s.flavor % 3 == 2);
            if !flips_at_zero {
                continue;
            }
            let path = dir.join(format!("f{seed}"));
            let payload = vec![0u8; 64];
            {
                let mut f = Vfs::create(&fs, &path).unwrap();
                f.write_all(&payload).unwrap();
                fs.disarm();
                f.sync_all().unwrap();
            }
            let got = std::fs::read(&path).unwrap();
            let flipped: u32 = got
                .iter()
                .zip(&payload)
                .map(|(a, b)| (a ^ b).count_ones())
                .sum();
            assert_eq!(flipped, 1, "seed {seed} flipped {flipped} bits");
            assert_eq!(fs.injected_kinds(), vec![FaultKind::BitFlip]);
            return;
        }
        panic!("no seed in 0..256 schedules a bit flip at op 0");
    }
}
