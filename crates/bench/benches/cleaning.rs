//! Data-cleaner throughput — the Fig. 5/6 machinery.

use cm_events::TimeSeries;
use counterminer::{CleanerConfig, DataCleaner};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// A dirty series: steady level, bursts, a few spikes and zeros.
fn dirty_series(n: usize) -> TimeSeries {
    let mut v: Vec<f64> = (0..n)
        .map(|i| 1000.0 + ((i * 37) % 101) as f64 * 4.0)
        .collect();
    for i in (7..n).step_by(59) {
        v[i] = 25_000.0; // spike
    }
    for i in (13..n).step_by(47) {
        v[i] = 0.0; // missing
    }
    TimeSeries::from_values(v)
}

fn bench_cleaning(c: &mut Criterion) {
    let mut group = c.benchmark_group("cleaning");
    group.sample_size(30);
    let cleaner = DataCleaner::new(CleanerConfig::default());
    for n in [256usize, 512, 1024] {
        let series = dirty_series(n);
        group.bench_with_input(BenchmarkId::new("clean_series", n), &n, |bench, _| {
            bench.iter(|| cleaner.clean_series(std::hint::black_box(&series)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cleaning);
criterion_main!(benches);
