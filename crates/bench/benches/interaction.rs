//! Interaction-ranking cost — the Fig. 11/12 pipeline stage.

use cm_events::EventId;
use cm_ml::{Dataset, SgbrtConfig};
use counterminer::InteractionRanker;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_interaction(c: &mut Criterion) {
    let mut group = c.benchmark_group("interaction");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(3);
    let rows: Vec<Vec<f64>> = (0..300)
        .map(|_| (0..12).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let y: Vec<f64> = rows.iter().map(|r| r[0] * r[1] + r[2]).collect();
    let data = Dataset::new(rows, y).unwrap();
    let events: Vec<EventId> = (0..12).map(EventId::new).collect();
    let model = SgbrtConfig {
        n_trees: 50,
        ..SgbrtConfig::default()
    }
    .fit(&data)
    .unwrap();

    for top_k in [4usize, 8] {
        let top = &events[..top_k];
        group.bench_with_input(BenchmarkId::new("rank_pairs", top_k), &top_k, |b, _| {
            b.iter(|| {
                InteractionRanker::new()
                    .rank_pairs(&model, &events, std::hint::black_box(&data), top)
                    .unwrap()
            });
        });
    }

    // Serial (1 worker) vs. parallel (all cores) over the same pair
    // loop — identical rankings, different wall clock.
    let top = &events[..8];
    for (label, threads) in [("serial", 1usize), ("parallel", 0)] {
        cm_par::set_max_threads(threads);
        group.bench_function(BenchmarkId::new("rank_pairs_8ev", label), |b| {
            b.iter(|| {
                InteractionRanker::new()
                    .rank_pairs(&model, &events, std::hint::black_box(&data), top)
                    .unwrap()
            });
        });
        group.bench_function(BenchmarkId::new("rank_pairs_additive_8ev", label), |b| {
            b.iter(|| {
                InteractionRanker::new()
                    .rank_pairs_additive(&model, &events, std::hint::black_box(&data), top)
                    .unwrap()
            });
        });
    }
    cm_par::set_max_threads(0);
    group.finish();
}

criterion_group!(benches, bench_interaction);
criterion_main!(benches);
