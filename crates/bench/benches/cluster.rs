//! Counter-signature clustering hot paths: the warm `cluster_snapshot`
//! route (snapshot load + signature build + seeded k-medoids) and the
//! two `cm_stats::cluster` kernels it leans on.
//!
//! The `signature_build` group is the perf-gate anchor for the
//! `cluster` analysis mode: committed baselines live in
//! `BENCH_cluster.json` and `cm-bench --bin perf_gate` compares fresh
//! runs against them.

use cm_sim::ALL_BENCHMARKS;
use cm_stats::cluster::{k_medoids, pairwise_distances, SignatureDistance};
use cm_store::Store;
use counterminer::{ClusterConfig, CounterMiner, MinerConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Synthetic normalized signatures with four planted groups — the same
/// shape (runs × dims) the warm path hands to the kernels.
fn synthetic_signatures(n: usize, dims: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..dims)
                .map(|d| {
                    let jitter = ((i * 31 + d * 7) % 97) as f64 / 97.0;
                    jitter + (i % 4) as f64 * 1.5
                })
                .collect()
        })
        .collect()
}

fn bench_cluster(c: &mut Criterion) {
    let mut group = c.benchmark_group("signature_build");
    group.sample_size(10);

    // The serving-layer hot path: warm clustering from committed
    // snapshots, store reads included.
    let path =
        std::env::temp_dir().join(format!("cm_bench_cluster_{}.cmstore", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let miner = CounterMiner::new(MinerConfig {
        runs_per_benchmark: 2,
        events_to_measure: Some(16),
        ..MinerConfig::default()
    });
    let benchmarks = &ALL_BENCHMARKS[..4];
    let cfg = ClusterConfig {
        k: 2,
        ..ClusterConfig::default()
    };
    let mut store = Store::open(&path).unwrap();
    miner.analyze_cluster(benchmarks, &mut store, &cfg).unwrap();
    group.bench_with_input(BenchmarkId::new("warm_cluster", 4), &4, |b, _| {
        b.iter(|| {
            miner
                .cluster_snapshot(std::hint::black_box(benchmarks), &store, &cfg)
                .unwrap()
                .expect("snapshots committed")
        });
    });
    drop(store);
    let _ = std::fs::remove_file(&path);

    // The kernels on their own, at the full-suite scale (16 benchmarks
    // x 4 runs) with a typical signature width.
    let n = 64;
    let signatures = synthetic_signatures(n, 34);
    let distances = pairwise_distances(&signatures, SignatureDistance::Euclidean).unwrap();
    group.bench_with_input(BenchmarkId::new("pairwise", n), &n, |b, _| {
        b.iter(|| {
            pairwise_distances(
                std::hint::black_box(&signatures),
                SignatureDistance::Euclidean,
            )
            .unwrap()
        });
    });
    group.bench_with_input(BenchmarkId::new("k_medoids", n), &n, |b, _| {
        b.iter(|| k_medoids(std::hint::black_box(&distances), 4, 0).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_cluster);
criterion_main!(benches);
