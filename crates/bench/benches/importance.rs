//! EIR importance-ranking cost — the Fig. 9/10 pipeline stage.

use cm_events::EventId;
use cm_ml::{Dataset, SgbrtConfig, Trainer};
use counterminer::{ImportanceConfig, ImportanceRanker};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn dataset(rows: usize, features: usize) -> (Dataset, Vec<EventId>) {
    let mut rng = StdRng::seed_from_u64(2);
    let data: Vec<Vec<f64>> = (0..rows)
        .map(|_| (0..features).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let y: Vec<f64> = data.iter().map(|r| 1.5 - r[0] - 0.3 * r[1]).collect();
    (
        Dataset::new(data, y).unwrap(),
        (0..features).map(EventId::new).collect(),
    )
}

fn bench_importance(c: &mut Criterion) {
    let mut group = c.benchmark_group("importance");
    group.sample_size(10);
    for features in [20usize, 40] {
        let (data, events) = dataset(300, features);
        let ranker = ImportanceRanker::new(ImportanceConfig {
            sgbrt: SgbrtConfig {
                n_trees: 30,
                ..SgbrtConfig::default()
            },
            prune_step: 10,
            min_events: 10,
            ..ImportanceConfig::default()
        });
        group.bench_with_input(BenchmarkId::new("eir", features), &features, |b, _| {
            b.iter(|| ranker.rank(std::hint::black_box(&data), &events).unwrap());
        });
    }
    group.finish();
}

/// Serial (1 worker) vs. parallel (all cores) EIR — identical rankings,
/// different wall clock.
fn bench_importance_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("importance_threads");
    group.sample_size(10);
    let (data, events) = dataset(300, 40);
    let ranker = ImportanceRanker::new(ImportanceConfig {
        sgbrt: SgbrtConfig {
            n_trees: 30,
            ..SgbrtConfig::default()
        },
        prune_step: 10,
        min_events: 10,
        ..ImportanceConfig::default()
    });
    for (label, threads) in [("serial", 1usize), ("parallel", 0)] {
        cm_par::set_max_threads(threads);
        group.bench_function(BenchmarkId::new("eir_40ev", label), |b| {
            b.iter(|| ranker.rank(std::hint::black_box(&data), &events).unwrap());
        });
    }
    cm_par::set_max_threads(0);
    group.finish();
}

/// Full EIR under each trainer: the hist path bins once and retrains
/// every pruning round on zero-copy column views of the shared binning.
fn bench_importance_trainers(c: &mut Criterion) {
    let mut group = c.benchmark_group("importance_trainers");
    group.sample_size(10);
    let (data, events) = dataset(1000, 60);
    for (label, trainer) in [("exact", Trainer::Exact), ("hist", Trainer::Hist)] {
        let ranker = ImportanceRanker::new(ImportanceConfig {
            sgbrt: SgbrtConfig {
                n_trees: 50,
                trainer,
                ..SgbrtConfig::default()
            },
            prune_step: 10,
            min_events: 20,
            ..ImportanceConfig::default()
        });
        group.bench_function(BenchmarkId::new("eir_1000x60", label), |b| {
            b.iter(|| ranker.rank(std::hint::black_box(&data), &events).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_importance,
    bench_importance_threads,
    bench_importance_trainers
);
criterion_main!(benches);
