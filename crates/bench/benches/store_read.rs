//! Store read-path decode throughput: batched cold reads vs the
//! per-key loop, warm cache hits, and serial vs parallel chunk decode.
//!
//! The `store_read` group is the perf-gate anchor for the zero-copy
//! batched read path (`Store::read_series_batch`): committed baselines
//! live in `BENCH_store_read.json` and `cm-bench --bin perf_gate`
//! compares fresh Criterion runs against them.

use cm_events::{EventId, SampleMode};
use cm_store::{CacheConfig, SeriesKey, Store};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::path::PathBuf;

const RUNS: u32 = 4;
const EVENTS: usize = 16;

fn bench_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "cm_bench_store_read_{}_{name}.cmstore",
        std::process::id()
    ))
}

/// Integral counter-like values (DeltaVarint-eligible).
fn counter_series(run: u32, event: usize, n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (1000 + (i as u64 * 37 + run as u64 * 101 + event as u64 * 13) % 4096) as f64)
        .collect()
}

fn all_keys() -> Vec<SeriesKey> {
    let mut keys = Vec::with_capacity(RUNS as usize * EVENTS);
    for run in 0..RUNS {
        for event in 0..EVENTS {
            keys.push(SeriesKey::new(
                "bench",
                run,
                SampleMode::Mlpx,
                EventId::new(event),
            ));
        }
    }
    keys
}

fn committed_store(path: &PathBuf, n: usize, cache: CacheConfig) -> Store {
    let _ = std::fs::remove_file(path);
    let mut store = Store::open_with(path, cache).unwrap();
    for run in 0..RUNS {
        for event in 0..EVENTS {
            store
                .append_series(
                    SeriesKey::new("bench", run, SampleMode::Mlpx, EventId::new(event)),
                    &counter_series(run, event, n),
                )
                .unwrap();
        }
    }
    store.commit().unwrap();
    store
}

fn batch_sum(store: &Store, keys: &[SeriesKey]) -> f64 {
    store
        .read_series_batch(std::hint::black_box(keys))
        .unwrap()
        .iter()
        .map(|v| v[0])
        .sum()
}

fn bench_store_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_read");
    group.sample_size(20);
    let no_cache = CacheConfig {
        capacity_bytes: 0,
        ..CacheConfig::default()
    };
    let keys = all_keys();

    for n in [256usize, 1024] {
        // Cold per-key loop: one positioned read + decode per chunk.
        let path = bench_path("per_key_cold");
        let store = committed_store(&path, n, no_cache);
        group.bench_with_input(BenchmarkId::new("per_key_cold", n), &n, |bench, _| {
            bench.iter(|| {
                let mut sum = 0.0f64;
                for key in &keys {
                    sum += store.read_series(std::hint::black_box(key)).unwrap()[0];
                }
                sum
            });
        });
        drop(store);
        let _ = std::fs::remove_file(&path);

        // Cold batch: coalesced region reads + parallel borrowed decode.
        let path = bench_path("batch_cold");
        let store = committed_store(&path, n, no_cache);
        group.bench_with_input(BenchmarkId::new("batch_cold", n), &n, |bench, _| {
            bench.iter(|| batch_sum(&store, &keys));
        });

        // Same workload with the decode fan-out pinned to one thread:
        // the parallel-vs-serial decode delta on this machine.
        group.bench_with_input(BenchmarkId::new("batch_cold_serial", n), &n, |bench, _| {
            cm_par::set_max_threads(1);
            bench.iter(|| batch_sum(&store, &keys));
            cm_par::set_max_threads(0);
        });
        drop(store);
        let _ = std::fs::remove_file(&path);

        // Warm batch: every chunk already resident in the block cache.
        let path = bench_path("batch_warm");
        let store = committed_store(&path, n, CacheConfig::default());
        batch_sum(&store, &keys);
        group.bench_with_input(BenchmarkId::new("batch_warm", n), &n, |bench, _| {
            bench.iter(|| batch_sum(&store, &keys));
        });
        drop(store);
        let _ = std::fs::remove_file(&path);
    }
    group.finish();
}

criterion_group!(benches, bench_store_read);
criterion_main!(benches);
