//! DTW benchmarks — the error-metric kernel behind Figs. 1, 6, 7.

use cm_stats::dtw;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn series(n: usize, phase: f64) -> Vec<f64> {
    (0..n)
        .map(|i| (i as f64 * 0.05 + phase).sin() * 100.0 + ((i * 31) % 17) as f64)
        .collect()
}

fn bench_dtw(c: &mut Criterion) {
    let mut group = c.benchmark_group("dtw");
    group.sample_size(20);
    for n in [128usize, 256, 512] {
        let a = series(n, 0.0);
        let b = series(n + n / 10, 0.4);
        group.bench_with_input(BenchmarkId::new("exact", n), &n, |bench, _| {
            bench.iter(|| dtw::distance(std::hint::black_box(&a), std::hint::black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("banded_r32", n), &n, |bench, _| {
            bench.iter(|| {
                dtw::distance_banded(std::hint::black_box(&a), std::hint::black_box(&b), 32)
            });
        });
    }
    group.finish();
}

/// Serial (1 worker) vs. parallel (all cores) batch DTW over many
/// pairs — identical distances, different wall clock.
fn bench_dtw_batch_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("dtw_batch_threads");
    group.sample_size(20);
    let all: Vec<Vec<f64>> = (0..32).map(|i| series(256, i as f64 * 0.1)).collect();
    let pairs: Vec<(&[f64], &[f64])> = (0..all.len() - 1)
        .map(|k| (all[k].as_slice(), all[k + 1].as_slice()))
        .collect();
    for (label, threads) in [("serial", 1usize), ("parallel", 0)] {
        cm_par::set_max_threads(threads);
        group.bench_function(BenchmarkId::new("batch_31x256", label), |b| {
            b.iter(|| dtw::distance_batch(std::hint::black_box(&pairs)));
        });
        group.bench_function(BenchmarkId::new("batch_banded_r32", label), |b| {
            b.iter(|| dtw::distance_batch_banded(std::hint::black_box(&pairs), 32));
        });
    }
    cm_par::set_max_threads(0);
    group.finish();
}

criterion_group!(benches, bench_dtw, bench_dtw_batch_threads);
criterion_main!(benches);
