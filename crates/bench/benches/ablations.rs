//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! KNN k, outlier-threshold n, EIR prune step, DTW band radius.

use cm_events::{EventId, TimeSeries};
use cm_ml::{Dataset, SgbrtConfig};
use cm_stats::dtw;
use counterminer::{CleanerConfig, DataCleaner, ImportanceConfig, ImportanceRanker};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn dirty_series(n: usize) -> TimeSeries {
    let mut v: Vec<f64> = (0..n).map(|i| 500.0 + ((i * 53) % 89) as f64).collect();
    for i in (5..n).step_by(37) {
        v[i] = 0.0;
    }
    for i in (11..n).step_by(83) {
        v[i] = 9_000.0;
    }
    TimeSeries::from_values(v)
}

fn bench_knn_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_knn_k");
    group.sample_size(20);
    let series = dirty_series(512);
    for k in [3usize, 5, 8] {
        let cleaner = DataCleaner::new(CleanerConfig {
            knn_k: k,
            ..CleanerConfig::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| cleaner.clean_series(std::hint::black_box(&series)).unwrap());
        });
    }
    group.finish();
}

fn bench_threshold_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_threshold_n");
    group.sample_size(20);
    let series = dirty_series(512);
    for n in [3.0f64, 5.0, 7.0] {
        let cleaner = DataCleaner::new(CleanerConfig {
            fixed_n: Some(n),
            ..CleanerConfig::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter(n as u32), &n, |b, _| {
            b.iter(|| cleaner.clean_series(std::hint::black_box(&series)).unwrap());
        });
    }
    group.finish();
}

fn bench_prune_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_eir_prune_step");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(4);
    let rows: Vec<Vec<f64>> = (0..250)
        .map(|_| (0..30).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let y: Vec<f64> = rows.iter().map(|r| 1.0 - r[0]).collect();
    let data = Dataset::new(rows, y).unwrap();
    let events: Vec<EventId> = (0..30).map(EventId::new).collect();
    for step in [5usize, 10, 20] {
        let ranker = ImportanceRanker::new(ImportanceConfig {
            sgbrt: SgbrtConfig {
                n_trees: 25,
                ..SgbrtConfig::default()
            },
            prune_step: step,
            min_events: 10,
            ..ImportanceConfig::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter(step), &step, |b, _| {
            b.iter(|| ranker.rank(std::hint::black_box(&data), &events).unwrap());
        });
    }
    group.finish();
}

fn bench_dtw_band(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dtw_band");
    group.sample_size(20);
    let a: Vec<f64> = (0..400).map(|i| (i as f64 * 0.1).sin()).collect();
    let b: Vec<f64> = (0..440).map(|i| (i as f64 * 0.1 + 0.2).sin()).collect();
    for radius in [8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(radius), &radius, |bench, &r| {
            bench.iter(|| dtw::distance_banded(std::hint::black_box(&a), &b, r));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_knn_k,
    bench_threshold_n,
    bench_prune_step,
    bench_dtw_band
);
criterion_main!(benches);
