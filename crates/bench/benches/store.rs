//! Persistent columnar store throughput: encode+commit, cold reads,
//! and cached reads.

use cm_events::{EventId, SampleMode};
use cm_store::{CacheConfig, SeriesKey, Store};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::path::PathBuf;

const RUNS: u32 = 4;
const EVENTS: usize = 16;

fn bench_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "cm_bench_store_{}_{name}.cmstore",
        std::process::id()
    ))
}

/// Integral counter-like values (DeltaVarint-eligible).
fn counter_series(run: u32, event: usize, n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (1000 + (i as u64 * 37 + run as u64 * 101 + event as u64 * 13) % 4096) as f64)
        .collect()
}

/// Writes a fully committed store with `RUNS × EVENTS` series of `n`
/// values each, returning it ready for reads.
fn committed_store(path: &PathBuf, n: usize, cache: CacheConfig) -> Store {
    let _ = std::fs::remove_file(path);
    let mut store = Store::open_with(path, cache).unwrap();
    for run in 0..RUNS {
        for event in 0..EVENTS {
            store
                .append_series(
                    SeriesKey::new("bench", run, SampleMode::Mlpx, EventId::new(event)),
                    &counter_series(run, event, n),
                )
                .unwrap();
        }
    }
    store.commit().unwrap();
    store
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("store");
    group.sample_size(20);

    for n in [256usize, 1024] {
        // Stage + encode + atomically commit a whole store.
        let path = bench_path("commit");
        group.bench_with_input(BenchmarkId::new("commit", n), &n, |bench, &n| {
            bench.iter(|| {
                let store = committed_store(&path, n, CacheConfig::default());
                std::hint::black_box(store.info().file_bytes)
            });
        });
        let _ = std::fs::remove_file(&path);

        // Cold reads: cache disabled, every read decodes from disk.
        let path = bench_path("read_cold");
        let store = committed_store(
            &path,
            n,
            CacheConfig {
                capacity_bytes: 0,
                ..CacheConfig::default()
            },
        );
        group.bench_with_input(BenchmarkId::new("read_cold", n), &n, |bench, _| {
            bench.iter(|| {
                let mut sum = 0.0f64;
                for run in 0..RUNS {
                    for event in 0..EVENTS {
                        let key =
                            SeriesKey::new("bench", run, SampleMode::Mlpx, EventId::new(event));
                        sum += store.read_series(std::hint::black_box(&key)).unwrap()[0];
                    }
                }
                sum
            });
        });
        drop(store);
        let _ = std::fs::remove_file(&path);

        // Warm reads: default cache, steady-state hits after first pass.
        let path = bench_path("read_cached");
        let store = committed_store(&path, n, CacheConfig::default());
        for run in 0..RUNS {
            for event in 0..EVENTS {
                let key = SeriesKey::new("bench", run, SampleMode::Mlpx, EventId::new(event));
                store.read_series(&key).unwrap();
            }
        }
        group.bench_with_input(BenchmarkId::new("read_cached", n), &n, |bench, _| {
            bench.iter(|| {
                let mut sum = 0.0f64;
                for run in 0..RUNS {
                    for event in 0..EVENTS {
                        let key =
                            SeriesKey::new("bench", run, SampleMode::Mlpx, EventId::new(event));
                        sum += store.read_series(std::hint::black_box(&key)).unwrap()[0];
                    }
                }
                sum
            });
        });
        drop(store);
        let _ = std::fs::remove_file(&path);
    }
    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
