//! SGBRT training and prediction — the Fig. 8–10 model kernel.

use cm_ml::{Dataset, SgbrtConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn dataset(rows: usize, features: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(1);
    let data: Vec<Vec<f64>> = (0..rows)
        .map(|_| (0..features).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let y: Vec<f64> = data
        .iter()
        .map(|r| 2.0 - r[0] - 0.4 * r[1] * r[1] + 0.1 * r[2])
        .collect();
    Dataset::new(data, y).unwrap()
}

fn bench_sgbrt(c: &mut Criterion) {
    let mut group = c.benchmark_group("sgbrt");
    group.sample_size(10);
    for features in [20usize, 60] {
        let data = dataset(400, features);
        let config = SgbrtConfig {
            n_trees: 50,
            ..SgbrtConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new("fit_400rows", features),
            &features,
            |b, _| {
                b.iter(|| config.fit(std::hint::black_box(&data)).unwrap());
            },
        );
    }
    let data = dataset(400, 20);
    let model = SgbrtConfig::default().fit(&data).unwrap();
    group.bench_function("predict_batch_400", |b| {
        b.iter(|| model.predict_batch(std::hint::black_box(data.rows())));
    });
    group.finish();
}

/// Serial (1 worker) vs. parallel (all cores) training and prediction —
/// results are bit-identical, only the wall clock changes.
fn bench_sgbrt_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("sgbrt_threads");
    group.sample_size(10);
    let data = dataset(400, 60);
    let config = SgbrtConfig {
        n_trees: 50,
        ..SgbrtConfig::default()
    };
    let model = config.fit(&data).unwrap();
    for (label, threads) in [("serial", 1usize), ("parallel", 0)] {
        cm_par::set_max_threads(threads);
        group.bench_function(BenchmarkId::new("fit_400x60", label), |b| {
            b.iter(|| config.fit(std::hint::black_box(&data)).unwrap());
        });
        group.bench_function(BenchmarkId::new("predict_batch", label), |b| {
            b.iter(|| model.predict_batch(std::hint::black_box(data.rows())));
        });
    }
    cm_par::set_max_threads(0);
    group.finish();
}

criterion_group!(benches, bench_sgbrt, bench_sgbrt_threads);
criterion_main!(benches);
