//! SGBRT training and prediction — the Fig. 8–10 model kernel.

use cm_ml::{BinnedDataset, Dataset, SgbrtConfig, Trainer, MAX_BINS};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn dataset(rows: usize, features: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(1);
    let data: Vec<Vec<f64>> = (0..rows)
        .map(|_| (0..features).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let y: Vec<f64> = data
        .iter()
        .map(|r| 2.0 - r[0] - 0.4 * r[1] * r[1] + 0.1 * r[2])
        .collect();
    Dataset::new(data, y).unwrap()
}

fn bench_sgbrt(c: &mut Criterion) {
    let mut group = c.benchmark_group("sgbrt");
    group.sample_size(10);
    for features in [20usize, 60] {
        let data = dataset(400, features);
        let config = SgbrtConfig {
            n_trees: 50,
            ..SgbrtConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new("fit_400rows", features),
            &features,
            |b, _| {
                b.iter(|| config.fit(std::hint::black_box(&data)).unwrap());
            },
        );
    }
    let data = dataset(400, 20);
    let model = SgbrtConfig::default().fit(&data).unwrap();
    group.bench_function("predict_batch_400", |b| {
        b.iter(|| model.predict_batch(std::hint::black_box(data.rows())));
    });
    group.finish();
}

/// Serial (1 worker) vs. parallel (all cores) training and prediction —
/// results are bit-identical, only the wall clock changes.
fn bench_sgbrt_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("sgbrt_threads");
    group.sample_size(10);
    let data = dataset(400, 60);
    let config = SgbrtConfig {
        n_trees: 50,
        ..SgbrtConfig::default()
    };
    let model = config.fit(&data).unwrap();
    for (label, threads) in [("serial", 1usize), ("parallel", 0)] {
        cm_par::set_max_threads(threads);
        group.bench_function(BenchmarkId::new("fit_400x60", label), |b| {
            b.iter(|| config.fit(std::hint::black_box(&data)).unwrap());
        });
        group.bench_function(BenchmarkId::new("predict_batch", label), |b| {
            b.iter(|| model.predict_batch(std::hint::black_box(data.rows())));
        });
    }
    cm_par::set_max_threads(0);
    group.finish();
}

/// Exact threshold scan vs. histogram bins on an EIR-sized problem
/// (2000 intervals × 60 events — one pruning round's retrain), plus the
/// one-off binning cost the EIR loop amortizes across rounds.
fn bench_trainers(c: &mut Criterion) {
    let mut group = c.benchmark_group("sgbrt_trainers");
    group.sample_size(10);
    let data = dataset(2000, 60);
    for (label, trainer) in [("exact", Trainer::Exact), ("hist", Trainer::Hist)] {
        let config = SgbrtConfig {
            n_trees: 50,
            trainer,
            ..SgbrtConfig::default()
        };
        group.bench_function(BenchmarkId::new("fit_2000x60", label), |b| {
            b.iter(|| config.fit(std::hint::black_box(&data)).unwrap());
        });
    }
    group.bench_function("bin_2000x60", |b| {
        b.iter(|| BinnedDataset::from_dataset(std::hint::black_box(&data), MAX_BINS));
    });
    let binned = BinnedDataset::from_dataset(&data, MAX_BINS);
    let config = SgbrtConfig {
        n_trees: 50,
        trainer: Trainer::Hist,
        ..SgbrtConfig::default()
    };
    group.bench_function("fit_binned_2000x60", |b| {
        b.iter(|| {
            config
                .fit_binned(std::hint::black_box(&binned.view()), data.targets())
                .unwrap()
        });
    });
    group.finish();
}

/// Per-row `Vec` rows vs. one packed flat buffer — the allocation the
/// interaction sweeps used to pay per probe row.
fn bench_predict_flat(c: &mut Criterion) {
    let mut group = c.benchmark_group("sgbrt_predict");
    group.sample_size(10);
    let data = dataset(2000, 60);
    let model = SgbrtConfig {
        n_trees: 50,
        ..SgbrtConfig::default()
    }
    .fit(&data)
    .unwrap();
    let flat: Vec<f64> = data.rows().iter().flatten().copied().collect();
    group.bench_function("predict_batch_nested_2000x60", |b| {
        b.iter(|| model.predict_batch(std::hint::black_box(data.rows())));
    });
    group.bench_function("predict_batch_flat_2000x60", |b| {
        b.iter(|| model.predict_batch_flat(std::hint::black_box(&flat)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sgbrt,
    bench_sgbrt_threads,
    bench_trainers,
    bench_predict_flat
);
criterion_main!(benches);
