//! PMU simulation throughput — the data generator behind Figs. 1–7.

use cm_events::EventCatalog;
use cm_sim::{Benchmark, PmuConfig, Workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_pmu(c: &mut Criterion) {
    let catalog = EventCatalog::haswell();
    let workload = Workload::new(Benchmark::Wordcount, &catalog);
    let pmu = PmuConfig::default();
    let mut group = c.benchmark_group("pmu");
    group.sample_size(10);
    for n_events in [10usize, 36] {
        let events = workload.top_event_ids(&catalog, n_events);
        group.bench_with_input(BenchmarkId::new("ocoe", n_events), &n_events, |b, _| {
            b.iter(|| pmu.simulate_ocoe(&workload, &events, 0, 1));
        });
        group.bench_with_input(BenchmarkId::new("mlpx", n_events), &n_events, |b, _| {
            b.iter(|| pmu.simulate_mlpx(&workload, &events, 0, 1));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pmu);
criterion_main!(benches);
