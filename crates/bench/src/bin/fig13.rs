//! Fig. 13 experiment binary. Pass --quick for a reduced-scale run.
use cm_bench::experiments::fig13_param_event_interactions;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        cm_bench::ExpConfig::quick()
    } else {
        cm_bench::ExpConfig::default()
    };
    match fig13_param_event_interactions::run(&cfg) {
        Ok(result) => print!("{result}"),
        Err(e) => {
            eprintln!("fig13 failed: {e}");
            std::process::exit(1);
        }
    }
}
