//! Fig. 8 experiment binary. Pass --quick for a reduced-scale run.
use cm_bench::experiments::fig08_eir_curve;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        cm_bench::ExpConfig::quick()
    } else {
        cm_bench::ExpConfig::default()
    };
    match fig08_eir_curve::run(&cfg) {
        Ok(result) => print!("{result}"),
        Err(e) => {
            eprintln!("fig08 failed: {e}");
            std::process::exit(1);
        }
    }
}
