//! Fig. 10 experiment binary. Pass --quick for a reduced-scale run.
use cm_bench::experiments::fig10_importance_cloudsuite;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        cm_bench::ExpConfig::quick()
    } else {
        cm_bench::ExpConfig::default()
    };
    match fig10_importance_cloudsuite::run(&cfg) {
        Ok(result) => print!("{result}"),
        Err(e) => {
            eprintln!("fig10 failed: {e}");
            std::process::exit(1);
        }
    }
}
