//! Fig. 15 experiment binary. Pass --quick for a reduced-scale run.
use cm_bench::experiments::fig15_profiling_cost;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        cm_bench::ExpConfig::quick()
    } else {
        cm_bench::ExpConfig::default()
    };
    match fig15_profiling_cost::run(&cfg) {
        Ok(result) => print!("{result}"),
        Err(e) => {
            eprintln!("fig15 failed: {e}");
            std::process::exit(1);
        }
    }
}
