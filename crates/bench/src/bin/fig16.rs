//! Fig. 16 experiment binary. Pass --quick for a reduced-scale run.
use cm_bench::experiments::fig16_colocation;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        cm_bench::ExpConfig::quick()
    } else {
        cm_bench::ExpConfig::default()
    };
    match fig16_colocation::run(&cfg) {
        Ok(result) => print!("{result}"),
        Err(e) => {
            eprintln!("fig16 failed: {e}");
            std::process::exit(1);
        }
    }
}
