//! Runs every table/figure experiment and writes the combined report to
//! `EXPERIMENTS-results.txt` (and stdout). Pass `--quick` for the
//! reduced-scale variant used in smoke testing.

use cm_bench::experiments::*;
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        ExpConfig::quick()
    } else {
        ExpConfig::default()
    };

    let mut out = String::new();
    let started = Instant::now();
    writeln!(
        out,
        "CounterMiner reproduction — all experiments ({:?} scale)\n",
        cfg.scale
    )
    .unwrap();

    macro_rules! section {
        ($name:literal, $body:expr) => {{
            let t = Instant::now();
            eprintln!("running {} ...", $name);
            match $body {
                Ok(result) => {
                    writeln!(out, "{result}").unwrap();
                }
                Err(e) => {
                    writeln!(out, "{} FAILED: {e}\n", $name).unwrap();
                }
            }
            eprintln!("  {} done in {:.1?}", $name, t.elapsed());
        }};
    }

    writeln!(out, "{}", table2_benchmarks::run()).unwrap();
    writeln!(out, "{}", table3_events::run()).unwrap();
    writeln!(out, "{}", table4_spark_params::run()).unwrap();
    section!("fig01", fig01_mlpx_error::run(&cfg));
    section!("fig02", fig02_dirty_examples::run(&cfg));
    section!("fig03", fig03_error_vs_events::run(&cfg));
    section!("table1", table1_threshold_coverage::run(&cfg));
    section!("fig05", fig05_cleaning_examples::run(&cfg));
    section!("fig06", fig06_error_reduction::run(&cfg));
    section!("fig07", fig07_cleaned_vs_events::run(&cfg));
    section!("fig08", fig08_eir_curve::run(&cfg));
    section!("fig09", fig09_importance_hibench::run(&cfg));
    section!("fig10", fig10_importance_cloudsuite::run(&cfg));
    section!("fig11", fig11_interactions_hibench::run(&cfg));
    section!("fig12", fig12_interactions_cloudsuite::run(&cfg));
    section!("fig13", fig13_param_event_interactions::run(&cfg));
    section!("fig14", fig14_tuning_sweep::run(&cfg));
    section!("fig15", fig15_profiling_cost::run(&cfg));
    section!("fig16", fig16_colocation::run(&cfg));
    section!("ablation_cleaning", ablation_cleaning::run(&cfg));
    section!("ablation_eir", ablation_eir::run(&cfg));
    section!("baseline_subinterval", baseline_subinterval::run(&cfg));
    section!("baseline_scheduling", baseline_scheduling::run(&cfg));
    section!("baseline_pca", baseline_pca::run(&cfg));
    section!("method_b_direct", method_b_direct::run(&cfg));
    section!("findings", findings_summary::run(&cfg));

    writeln!(out, "total wall time: {:.1?}", started.elapsed()).unwrap();
    print!("{out}");
    if let Err(e) = std::fs::write("EXPERIMENTS-results.txt", &out) {
        eprintln!("could not write EXPERIMENTS-results.txt: {e}");
    }
}
