//! Fig. 6 experiment binary. Pass --quick for a reduced-scale run.
use cm_bench::experiments::fig06_error_reduction;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        cm_bench::ExpConfig::quick()
    } else {
        cm_bench::ExpConfig::default()
    };
    match fig06_error_reduction::run(&cfg) {
        Ok(result) => print!("{result}"),
        Err(e) => {
            eprintln!("fig06 failed: {e}");
            std::process::exit(1);
        }
    }
}
