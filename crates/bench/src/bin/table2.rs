//! Table 2 printer.
fn main() {
    print!("{}", cm_bench::experiments::table2_benchmarks::run());
}
