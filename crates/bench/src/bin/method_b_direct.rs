//! Direct method-B study binary. Pass --quick for a reduced run.
use cm_bench::experiments::method_b_direct;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        cm_bench::ExpConfig::quick()
    } else {
        cm_bench::ExpConfig::default()
    };
    match method_b_direct::run(&cfg) {
        Ok(result) => print!("{result}"),
        Err(e) => {
            eprintln!("method_b_direct failed: {e}");
            std::process::exit(1);
        }
    }
}
