//! Fig. 3 experiment binary. Pass --quick for a reduced-scale run.
use cm_bench::experiments::fig03_error_vs_events;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        cm_bench::ExpConfig::quick()
    } else {
        cm_bench::ExpConfig::default()
    };
    match fig03_error_vs_events::run(&cfg) {
        Ok(result) => print!("{result}"),
        Err(e) => {
            eprintln!("fig03 failed: {e}");
            std::process::exit(1);
        }
    }
}
