//! Extension experiment binary. Pass --quick for a reduced-scale run.
use cm_bench::experiments::ablation_cleaning;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        cm_bench::ExpConfig::quick()
    } else {
        cm_bench::ExpConfig::default()
    };
    match ablation_cleaning::run(&cfg) {
        Ok(result) => print!("{result}"),
        Err(e) => {
            eprintln!("ablation_cleaning failed: {e}");
            std::process::exit(1);
        }
    }
}
