//! Fig. 1 experiment binary. Pass --quick for a reduced-scale run.
use cm_bench::experiments::fig01_mlpx_error;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        cm_bench::ExpConfig::quick()
    } else {
        cm_bench::ExpConfig::default()
    };
    match fig01_mlpx_error::run(&cfg) {
        Ok(result) => print!("{result}"),
        Err(e) => {
            eprintln!("fig01 failed: {e}");
            std::process::exit(1);
        }
    }
}
