//! Extension experiment binary. Pass --quick for a reduced-scale run.
use cm_bench::experiments::baseline_pca;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        cm_bench::ExpConfig::quick()
    } else {
        cm_bench::ExpConfig::default()
    };
    match baseline_pca::run(&cfg) {
        Ok(result) => print!("{result}"),
        Err(e) => {
            eprintln!("baseline_pca failed: {e}");
            std::process::exit(1);
        }
    }
}
