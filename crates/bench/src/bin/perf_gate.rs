//! The performance-regression gate.
//!
//! Compares a fresh Criterion run (the `target/criterion/**/new/
//! estimates.json` tree) against the committed `BENCH_*.json` baselines
//! in the repository root and **fails** (exit code 1) when any shared
//! benchmark id got slower than the noise threshold allows. CI runs
//! this after `cargo bench`; locally:
//!
//! ```text
//! cargo bench -p cm-bench --bench store_read --bench sgbrt
//! cargo run -p cm-bench --bin perf_gate
//! cargo run -p cm-bench --bin perf_gate -- --threshold 2.0
//! cargo run -p cm-bench --bin perf_gate -- --update   # refresh baselines
//! ```
//!
//! Besides the Criterion tree, `--fresh FILE` (repeatable) merges the
//! `ns_per_iter` map of a freshly generated report — e.g. the
//! `BENCH_serve_*.json` a `counterminer load --out` run just wrote —
//! into the fresh set, so non-Criterion harnesses gate through the
//! same mechanism.
//!
//! Only ids present in **both** a baseline file and the fresh run are
//! compared, so partial bench runs gate exactly what they measured.
//! The threshold is deliberately generous (default 1.5×, CI uses more):
//! Criterion point estimates on shared runners are noisy, and a gate
//! that cries wolf gets deleted. Everything is std-only — the gate must
//! build and run even where Criterion's dependencies are unavailable.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Default regression threshold: fresh/baseline above this fails.
const DEFAULT_THRESHOLD: f64 = 1.5;

fn main() -> ExitCode {
    let mut threshold: Option<f64> = None;
    let mut update = false;
    let mut run_bench = false;
    let mut baseline_dir = PathBuf::from(".");
    let mut criterion_dir: Option<PathBuf> = None;
    let mut fresh_files: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 => threshold = Some(v),
                _ => return usage("--threshold needs a positive number"),
            },
            "--update" => update = true,
            "--run" => run_bench = true,
            "--baseline-dir" => match args.next() {
                Some(d) => baseline_dir = PathBuf::from(d),
                None => return usage("--baseline-dir needs a path"),
            },
            "--criterion-dir" => match args.next() {
                Some(d) => criterion_dir = Some(PathBuf::from(d)),
                None => return usage("--criterion-dir needs a path"),
            },
            "--fresh" => match args.next() {
                Some(f) => fresh_files.push(PathBuf::from(f)),
                None => return usage("--fresh needs a file"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    let threshold = threshold
        .or_else(|| {
            std::env::var("CM_PERF_GATE_THRESHOLD")
                .ok()
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(DEFAULT_THRESHOLD);
    let criterion_dir = criterion_dir.unwrap_or_else(|| PathBuf::from("target").join("criterion"));

    if run_bench {
        let status = std::process::Command::new("cargo")
            .args(["bench", "-p", "cm-bench"])
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("perf gate: `cargo bench -p cm-bench` failed with {s}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("perf gate: could not spawn cargo bench: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Baselines: every BENCH_*.json in the repo root with an
    // `ns_per_iter` map, remembering which file each id came from.
    let mut baselines: BTreeMap<String, (f64, PathBuf)> = BTreeMap::new();
    let mut baseline_files: Vec<PathBuf> = Vec::new();
    let entries = match std::fs::read_dir(&baseline_dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!(
                "perf gate: cannot read baseline dir {}: {e}",
                baseline_dir.display()
            );
            return ExitCode::FAILURE;
        }
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
            continue;
        }
        let path = entry.path();
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let ids = parse_ns_per_iter(&text);
        if !ids.is_empty() {
            baseline_files.push(path.clone());
            for (id, ns) in ids {
                baselines.insert(id, (ns, path.clone()));
            }
        }
    }
    if baselines.is_empty() {
        eprintln!(
            "perf gate: no BENCH_*.json baselines with an ns_per_iter map under {}",
            baseline_dir.display()
        );
        return ExitCode::FAILURE;
    }

    // Fresh run: walk target/criterion for */new/estimates.json, then
    // merge the ns_per_iter maps of any --fresh report files (ids from
    // files win over same-named Criterion ids — they are newer output).
    let mut fresh: BTreeMap<String, f64> = BTreeMap::new();
    collect_estimates(&criterion_dir, &mut Vec::new(), &mut fresh);
    for file in &fresh_files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("perf gate: cannot read --fresh {}: {e}", file.display());
                return ExitCode::FAILURE;
            }
        };
        let ids = parse_ns_per_iter(&text);
        if ids.is_empty() {
            eprintln!(
                "perf gate: --fresh {} has no ns_per_iter map",
                file.display()
            );
            return ExitCode::FAILURE;
        }
        for (id, ns) in ids {
            fresh.insert(id, ns);
        }
    }
    if fresh.is_empty() {
        eprintln!(
            "perf gate: no Criterion estimates under {} and no --fresh reports — run \
             `cargo bench -p cm-bench` (or pass --run) first",
            criterion_dir.display()
        );
        return ExitCode::FAILURE;
    }

    let shared: Vec<&String> = baselines
        .keys()
        .filter(|id| fresh.contains_key(*id))
        .collect();
    println!(
        "perf gate: {} baseline id(s), {} fresh id(s), {} shared, threshold {threshold:.2}x",
        baselines.len(),
        fresh.len(),
        shared.len()
    );
    if shared.is_empty() {
        eprintln!("perf gate: no overlap between baselines and the fresh run — nothing gated");
        return ExitCode::FAILURE;
    }

    let mut regressed: Vec<String> = Vec::new();
    for id in &shared {
        let (base, _) = baselines[*id];
        let now = fresh[*id];
        let ratio = now / base;
        if ratio > threshold {
            println!(
                "  REGRESSION {id}: {base:.0} ns -> {now:.0} ns ({ratio:.2}x > {threshold:.2}x)"
            );
            regressed.push((*id).clone());
        } else if ratio < 1.0 / threshold {
            println!("  improved   {id}: {base:.0} ns -> {now:.0} ns ({ratio:.2}x)");
        } else {
            println!("  ok         {id}: {base:.0} ns -> {now:.0} ns ({ratio:.2}x)");
        }
    }

    if update {
        for path in &baseline_files {
            match rewrite_baseline(path, &fresh) {
                Ok(0) => {}
                Ok(n) => println!("perf gate: updated {n} id(s) in {}", path.display()),
                Err(e) => {
                    eprintln!("perf gate: failed to update {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        return ExitCode::SUCCESS;
    }

    if regressed.is_empty() {
        println!("perf gate PASSED: no id slower than {threshold:.2}x its baseline");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "perf gate FAILED: {} regressed benchmark id(s): {}\n\
             (rerun to rule out noise; if the change is intentional, refresh the baseline \
             with `cargo run -p cm-bench --bin perf_gate -- --update`)",
            regressed.len(),
            regressed.join(", ")
        );
        ExitCode::FAILURE
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("perf gate: {err}");
    }
    eprintln!(
        "usage: perf_gate [--run] [--update] [--threshold X] \
         [--baseline-dir DIR] [--criterion-dir DIR] [--fresh FILE]...\n\
         \x20 --run            run `cargo bench -p cm-bench` first\n\
         \x20 --update         rewrite baseline ns_per_iter values from the fresh run\n\
         \x20 --threshold X    fail when fresh/baseline > X (default {DEFAULT_THRESHOLD}, \
         env CM_PERF_GATE_THRESHOLD)\n\
         \x20 --baseline-dir   where BENCH_*.json live (default .)\n\
         \x20 --criterion-dir  Criterion output tree (default target/criterion)\n\
         \x20 --fresh FILE     merge FILE's ns_per_iter map into the fresh set \
         (repeatable; for non-Criterion reports like BENCH_serve_*.json)"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Extracts the `"ns_per_iter": { "id": number, ... }` map from a
/// baseline file. Minimal JSON scanning — ids in these files never
/// contain escaped quotes — and anything unparseable yields an empty
/// map rather than an error, so unrelated BENCH files are skipped.
fn parse_ns_per_iter(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let Some(start) = text.find("\"ns_per_iter\"") else {
        return out;
    };
    let Some(open) = text[start..].find('{') else {
        return out;
    };
    let body = &text[start + open + 1..];
    let Some(close) = body.find('}') else {
        return out;
    };
    for pair in body[..close].split(',') {
        let mut halves = pair.splitn(2, ':');
        let (Some(key), Some(value)) = (halves.next(), halves.next()) else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if key.is_empty() {
            continue;
        }
        if let Ok(ns) = value.trim().parse::<f64>() {
            out.push((key.to_string(), ns));
        }
    }
    out
}

/// Walks `dir` collecting `<id path>/new/estimates.json` mean point
/// estimates; `stack` holds the id segments so far. Criterion's
/// `report` directories are skipped.
fn collect_estimates(dir: &Path, stack: &mut Vec<String>, out: &mut BTreeMap<String, f64>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if !path.is_dir() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        if name == "report" {
            continue;
        }
        if name == "new" {
            let est = path.join("estimates.json");
            if let Ok(text) = std::fs::read_to_string(&est) {
                if let Some(mean) = parse_mean_point_estimate(&text) {
                    out.insert(stack.join("/"), mean);
                }
            }
            continue;
        }
        stack.push(name);
        collect_estimates(&path, stack, out);
        stack.pop();
    }
}

/// Pulls `point_estimate` out of the `"mean"` object in a Criterion
/// `estimates.json` without a JSON parser: finds the `"mean"` key, then
/// the first `"point_estimate"` after it.
fn parse_mean_point_estimate(text: &str) -> Option<f64> {
    let mean = text.find("\"mean\"")?;
    let after = &text[mean..];
    let pe = after.find("\"point_estimate\"")?;
    let tail = &after[pe + "\"point_estimate\"".len()..];
    let colon = tail.find(':')?;
    let tail = tail[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E')
        })
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Rewrites the ns_per_iter values in one baseline file for every id
/// the fresh run measured, preserving all surrounding content. Returns
/// how many ids were updated.
fn rewrite_baseline(path: &Path, fresh: &BTreeMap<String, f64>) -> std::io::Result<usize> {
    let text = std::fs::read_to_string(path)?;
    let mut updated = 0usize;
    let mut out = text.clone();
    for (id, ns) in parse_ns_per_iter(&text) {
        let Some(&new_ns) = fresh.get(&id) else {
            continue;
        };
        if (new_ns - ns).abs() < 0.5 {
            continue;
        }
        let needle = format!("\"{id}\"");
        let Some(key_at) = out.find(&needle) else {
            continue;
        };
        let after_key = key_at + needle.len();
        let Some(colon) = out[after_key..].find(':') else {
            continue;
        };
        let value_at = after_key + colon + 1;
        let rest = &out[value_at..];
        let skip = rest.len() - rest.trim_start().len();
        let value_at = value_at + skip;
        let end = out[value_at..]
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
            .map(|e| value_at + e)
            .unwrap_or(out.len());
        out.replace_range(value_at..end, &format!("{}", new_ns.round() as u64));
        updated += 1;
    }
    if updated > 0 {
        std::fs::write(path, out)?;
    }
    Ok(updated)
}
