//! Table I experiment binary. Pass --quick for a reduced-scale run.
use cm_bench::experiments::table1_threshold_coverage;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        cm_bench::ExpConfig::quick()
    } else {
        cm_bench::ExpConfig::default()
    };
    match table1_threshold_coverage::run(&cfg) {
        Ok(result) => print!("{result}"),
        Err(e) => {
            eprintln!("table1 failed: {e}");
            std::process::exit(1);
        }
    }
}
