//! Fig. 5 experiment binary. Pass --quick for a reduced-scale run.
use cm_bench::experiments::fig05_cleaning_examples;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        cm_bench::ExpConfig::quick()
    } else {
        cm_bench::ExpConfig::default()
    };
    match fig05_cleaning_examples::run(&cfg) {
        Ok(result) => print!("{result}"),
        Err(e) => {
            eprintln!("fig05 failed: {e}");
            std::process::exit(1);
        }
    }
}
