//! Headline-findings summary binary. Pass --quick for a reduced run.
use cm_bench::experiments::findings_summary;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        cm_bench::ExpConfig::quick()
    } else {
        cm_bench::ExpConfig::default()
    };
    match findings_summary::run(&cfg) {
        Ok(result) => print!("{result}"),
        Err(e) => {
            eprintln!("findings failed: {e}");
            std::process::exit(1);
        }
    }
}
