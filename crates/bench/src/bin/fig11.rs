//! Fig. 11 experiment binary. Pass --quick for a reduced-scale run.
use cm_bench::experiments::fig11_interactions_hibench;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        cm_bench::ExpConfig::quick()
    } else {
        cm_bench::ExpConfig::default()
    };
    match fig11_interactions_hibench::run(&cfg) {
        Ok(result) => print!("{result}"),
        Err(e) => {
            eprintln!("fig11 failed: {e}");
            std::process::exit(1);
        }
    }
}
