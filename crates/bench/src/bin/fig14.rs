//! Fig. 14 experiment binary. Pass --quick for a reduced-scale run.
use cm_bench::experiments::fig14_tuning_sweep;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        cm_bench::ExpConfig::quick()
    } else {
        cm_bench::ExpConfig::default()
    };
    match fig14_tuning_sweep::run(&cfg) {
        Ok(result) => print!("{result}"),
        Err(e) => {
            eprintln!("fig14 failed: {e}");
            std::process::exit(1);
        }
    }
}
