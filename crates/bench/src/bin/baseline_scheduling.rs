//! Extension experiment binary. Pass --quick for a reduced-scale run.
use cm_bench::experiments::baseline_scheduling;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        cm_bench::ExpConfig::quick()
    } else {
        cm_bench::ExpConfig::default()
    };
    match baseline_scheduling::run(&cfg) {
        Ok(result) => print!("{result}"),
        Err(e) => {
            eprintln!("baseline_scheduling failed: {e}");
            std::process::exit(1);
        }
    }
}
