//! Fig. 12 experiment binary. Pass --quick for a reduced-scale run.
use cm_bench::experiments::fig12_interactions_cloudsuite;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        cm_bench::ExpConfig::quick()
    } else {
        cm_bench::ExpConfig::default()
    };
    match fig12_interactions_cloudsuite::run(&cfg) {
        Ok(result) => print!("{result}"),
        Err(e) => {
            eprintln!("fig12 failed: {e}");
            std::process::exit(1);
        }
    }
}
