//! Table 4 printer.
fn main() {
    print!("{}", cm_bench::experiments::table4_spark_params::run());
}
