//! EIR design-choice ablation binary. Pass --quick for a reduced run.
use cm_bench::experiments::ablation_eir;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        cm_bench::ExpConfig::quick()
    } else {
        cm_bench::ExpConfig::default()
    };
    match ablation_eir::run(&cfg) {
        Ok(result) => print!("{result}"),
        Err(e) => {
            eprintln!("ablation_eir failed: {e}");
            std::process::exit(1);
        }
    }
}
