//! Table 3 printer.
fn main() {
    print!("{}", cm_bench::experiments::table3_events::run());
}
