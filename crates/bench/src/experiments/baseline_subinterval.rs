//! Extension: CounterMiner's cleaning vs. (and composed with) the
//! during-sampling estimation baseline.
//!
//! The paper positions its post-measurement cleaning as *complementary*
//! to during-sampling estimation (Mathur & Cook's sub-interval linear
//! interpolation, Section VI-B). This experiment measures the DTW error
//! of `ICACHE.MISSES` under four configurations:
//!
//! * plain time scaling (what `perf` does),
//! * sub-interval linear estimation (the related-work baseline),
//! * scaling + CounterMiner cleaning,
//! * sub-interval estimation + CounterMiner cleaning (composed).

use super::common::{pct, Ctx, ExpConfig};
use cm_events::abbrev;
use cm_sim::{Extrapolation, PmuConfig, Workload, HIBENCH};
use counterminer::error_metrics::mlpx_error;
use counterminer::{CmError, DataCleaner};
use std::fmt;

/// Mean error under each configuration.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// Plain scaling, raw.
    pub scaling_raw: f64,
    /// Sub-interval linear estimation, raw.
    pub subinterval_raw: f64,
    /// Plain scaling + cleaning.
    pub scaling_cleaned: f64,
    /// Sub-interval estimation + cleaning (the composed pipeline).
    pub subinterval_cleaned: f64,
}

impl fmt::Display for BaselineResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Extension — during-sampling estimation vs. post-measurement cleaning"
        )?;
        writeln!(f, "scaling, raw                 {}", pct(self.scaling_raw))?;
        writeln!(
            f,
            "sub-interval estimation, raw {}",
            pct(self.subinterval_raw)
        )?;
        writeln!(
            f,
            "scaling + cleaning           {}",
            pct(self.scaling_cleaned)
        )?;
        writeln!(
            f,
            "sub-interval + cleaning      {}",
            pct(self.subinterval_cleaned)
        )?;
        writeln!(
            f,
            "cleaning helps in both cases — the approaches compose (the paper's claim \
             of complementarity)"
        )
    }
}

fn mean_error(
    ctx_pmu: &PmuConfig,
    ctx: &Ctx,
    cfg: &ExpConfig,
    clean: bool,
) -> Result<f64, CmError> {
    let icm = ctx.catalog.by_abbrev(abbrev::ICM).expect("ICM").id();
    let cleaner = DataCleaner::default();
    let mut total = 0.0;
    let mut count = 0usize;
    for b in HIBENCH {
        let workload = Workload::new(b, &ctx.catalog);
        let mut events = workload.top_event_ids(&ctx.catalog, 10);
        events.insert(icm);
        for rep in 0..cfg.error_reps() {
            let seed = cfg.seed.wrapping_add(rep as u64 * 104_729);
            let ocoe1 = ctx.pmu.simulate_ocoe(&workload, &events, 0, seed);
            let ocoe2 = ctx.pmu.simulate_ocoe(&workload, &events, 1, seed);
            let mlpx = ctx_pmu.simulate_mlpx(&workload, &events, 2, seed);
            let s1 = ocoe1.record.series(icm).expect("measured");
            let s2 = ocoe2.record.series(icm).expect("measured");
            let sm = mlpx.record.series(icm).expect("measured");
            let candidate = if clean {
                cleaner.clean_series(sm)?.0
            } else {
                sm.clone()
            };
            total += mlpx_error(s1, s2, &candidate)?;
            count += 1;
        }
    }
    Ok(total / count as f64)
}

/// Runs the comparison.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run(cfg: &ExpConfig) -> Result<BaselineResult, CmError> {
    let ctx = Ctx::new();
    let scaling = PmuConfig::default();
    let subinterval = PmuConfig {
        extrapolation: Extrapolation::SubIntervalLinear,
        ..PmuConfig::default()
    };
    Ok(BaselineResult {
        scaling_raw: mean_error(&scaling, &ctx, cfg, false)?,
        subinterval_raw: mean_error(&subinterval, &ctx, cfg, false)?,
        scaling_cleaned: mean_error(&scaling, &ctx, cfg, true)?,
        subinterval_cleaned: mean_error(&subinterval, &ctx, cfg, true)?,
    })
}
