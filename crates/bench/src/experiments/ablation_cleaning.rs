//! Ablation: which cleaning component does the work?
//!
//! The paper's cleaner has two parts — outlier replacement and
//! missing-value filling. This extension experiment measures the DTW
//! error (Eq. 4) of `ICACHE.MISSES` under four treatments: raw, outlier
//! replacement only, missing filling only, and both (the full cleaner),
//! plus a sweep of the outlier control variable `n` and the KNN `k`
//! (the design choices of Sections III-B.1/2).

use super::common::{pct, Ctx, ExpConfig};
use cm_events::{abbrev, TimeSeries};
use cm_sim::{Workload, HIBENCH};
use counterminer::error_metrics::mlpx_error;
use counterminer::{CleanerConfig, CmError, DataCleaner};
use std::fmt;

/// Error under each cleaning treatment, averaged over benchmarks.
#[derive(Debug, Clone)]
pub struct AblationCleaningResult {
    /// No cleaning.
    pub raw: f64,
    /// Outlier replacement only (missing values left as zeros).
    pub outliers_only: f64,
    /// Missing filling only (outliers left in place).
    pub missing_only: f64,
    /// The full cleaner.
    pub both: f64,
    /// `(n, error %)` for the fixed-n sweep (full cleaner otherwise).
    pub n_sweep: Vec<(f64, f64)>,
    /// `(k, error %)` for the KNN-k sweep (full cleaner otherwise).
    pub k_sweep: Vec<(usize, f64)>,
}

impl fmt::Display for AblationCleaningResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Ablation — cleaning components (ICACHE.MISSES, 10 events)"
        )?;
        writeln!(f, "raw            {}", pct(self.raw))?;
        writeln!(f, "outliers only  {}", pct(self.outliers_only))?;
        writeln!(f, "missing only   {}", pct(self.missing_only))?;
        writeln!(f, "both (paper)   {}", pct(self.both))?;
        write!(f, "n sweep:      ")?;
        for &(n, e) in &self.n_sweep {
            write!(f, " n={n}:{e:.1}%")?;
        }
        writeln!(f)?;
        write!(f, "k sweep:      ")?;
        for &(k, e) in &self.k_sweep {
            write!(f, " k={k}:{e:.1}%")?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "both components contribute; the paper's n = 5, k = 5 sit at/near the sweep minima"
        )
    }
}

/// A cleaner that applies only one component, built from config tricks:
/// outliers-only uses a zero-keep bound of infinity (all zeros "real"),
/// missing-only uses a huge fixed `n` (nothing is an outlier).
fn treatments() -> [(&'static str, CleanerConfig); 4] {
    [
        (
            "raw",
            CleanerConfig {
                fixed_n: Some(f64::INFINITY),
                zero_keep_max: f64::INFINITY,
                ..CleanerConfig::default()
            },
        ),
        (
            "outliers_only",
            CleanerConfig {
                zero_keep_max: f64::INFINITY,
                ..CleanerConfig::default()
            },
        ),
        (
            "missing_only",
            CleanerConfig {
                fixed_n: Some(f64::INFINITY),
                ..CleanerConfig::default()
            },
        ),
        ("both", CleanerConfig::default()),
    ]
}

fn mean_error_with(
    ctx: &Ctx,
    cfg: &ExpConfig,
    cleaner_config: CleanerConfig,
) -> Result<f64, CmError> {
    let icm = ctx.catalog.by_abbrev(abbrev::ICM).expect("ICM").id();
    let cleaner = DataCleaner::new(cleaner_config);
    let mut total = 0.0;
    let mut count = 0usize;
    for b in HIBENCH {
        let workload = Workload::new(b, &ctx.catalog);
        let mut events = workload.top_event_ids(&ctx.catalog, 10);
        events.insert(icm);
        for rep in 0..cfg.error_reps() {
            let seed = cfg.seed.wrapping_add(rep as u64 * 7919);
            let ocoe1 = ctx.pmu.simulate_ocoe(&workload, &events, 0, seed);
            let ocoe2 = ctx.pmu.simulate_ocoe(&workload, &events, 1, seed);
            let mlpx = ctx.pmu.simulate_mlpx(&workload, &events, 2, seed);
            let s1 = ocoe1.record.series(icm).expect("measured");
            let s2 = ocoe2.record.series(icm).expect("measured");
            let sm: &TimeSeries = mlpx.record.series(icm).expect("measured");
            let (cleaned, _) = cleaner.clean_series(sm)?;
            total += mlpx_error(s1, s2, &cleaned)?;
            count += 1;
        }
    }
    Ok(total / count as f64)
}

/// Runs the ablation.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run(cfg: &ExpConfig) -> Result<AblationCleaningResult, CmError> {
    let ctx = Ctx::new();
    let [raw, outliers_only, missing_only, both] =
        treatments().map(|(_, config)| mean_error_with(&ctx, cfg, config));
    let (raw, outliers_only, missing_only, both) = (raw?, outliers_only?, missing_only?, both?);

    let mut n_sweep = Vec::new();
    for n in [3.0, 4.0, 5.0, 6.0, 7.0] {
        let err = mean_error_with(
            &ctx,
            cfg,
            CleanerConfig {
                fixed_n: Some(n),
                ..CleanerConfig::default()
            },
        )?;
        n_sweep.push((n, err));
    }
    let mut k_sweep = Vec::new();
    for k in [3usize, 5, 8] {
        let err = mean_error_with(
            &ctx,
            cfg,
            CleanerConfig {
                knn_k: k,
                ..CleanerConfig::default()
            },
        )?;
        k_sweep.push((k, err));
    }

    Ok(AblationCleaningResult {
        raw,
        outliers_only,
        missing_only,
        both,
        n_sweep,
        k_sweep,
    })
}
