//! Fig. 3: raw MLPX error vs. the number of events multiplexed
//! simultaneously on 4 counters.
//!
//! Paper (raw): 10→37 %, 16→35 %, 20→41 %, 24→55 %, 28→50 %, 32→44 %,
//! 36→54 % — a noisy but clearly rising trend.

use super::common::{event_error, pct, Ctx, ExpConfig};
use cm_events::abbrev;
use cm_sim::HIBENCH;
use counterminer::CmError;
use std::fmt;

/// The event counts the paper sweeps.
pub const EVENT_COUNTS: [usize; 7] = [10, 16, 20, 24, 28, 32, 36];

/// Raw error per multiplexed-event count.
#[derive(Debug, Clone)]
pub struct Fig03Result {
    /// `(n_events, error %)`.
    pub points: Vec<(usize, f64)>,
}

impl Fig03Result {
    /// Least-squares slope of error vs. event count (the red trend line
    /// of the paper's figure); positive means error grows with events.
    pub fn trend_slope(&self) -> f64 {
        let n = self.points.len() as f64;
        let mx = self.points.iter().map(|&(x, _)| x as f64).sum::<f64>() / n;
        let my = self.points.iter().map(|&(_, y)| y).sum::<f64>() / n;
        let sxy: f64 = self
            .points
            .iter()
            .map(|&(x, y)| (x as f64 - mx) * (y - my))
            .sum();
        let sxx: f64 = self
            .points
            .iter()
            .map(|&(x, _)| (x as f64 - mx) * (x as f64 - mx))
            .sum();
        sxy / sxx
    }
}

impl fmt::Display for Fig03Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 3 — raw MLPX error vs. events multiplexed (4 counters)"
        )?;
        writeln!(f, "{:>8} {:>8}", "events", "error")?;
        for &(n, e) in &self.points {
            writeln!(f, "{n:>8} {}", pct(e))?;
        }
        writeln!(
            f,
            "trend: {:+.2} %/event (paper shows a rising trend, 37% @ 10 to 54% @ 36)",
            self.trend_slope()
        )
    }
}

/// Runs the experiment: the error of `ICACHE.MISSES` averaged over the
/// HiBench benchmarks at each event count.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run(cfg: &ExpConfig) -> Result<Fig03Result, CmError> {
    let ctx = Ctx::new();
    let icm = ctx.catalog.by_abbrev(abbrev::ICM).expect("ICM").id();
    let mut points = Vec::with_capacity(EVENT_COUNTS.len());
    for &n in &EVENT_COUNTS {
        let mut sum = 0.0;
        for b in HIBENCH {
            let (raw, _) = event_error(&ctx, b, icm, n, cfg.error_reps(), cfg.seed ^ n as u64)?;
            sum += raw;
        }
        points.push((n, sum / HIBENCH.len() as f64));
    }
    Ok(Fig03Result { points })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trend_slope_matches_hand_computation() {
        // Perfect line: error = 2 * events.
        let r = Fig03Result {
            points: EVENT_COUNTS.iter().map(|&n| (n, 2.0 * n as f64)).collect(),
        };
        assert!((r.trend_slope() - 2.0).abs() < 1e-9);
        // Flat series has zero slope.
        let flat = Fig03Result {
            points: EVENT_COUNTS.iter().map(|&n| (n, 5.0)).collect(),
        };
        assert!(flat.trend_slope().abs() < 1e-9);
    }

    #[test]
    fn display_lists_each_point() {
        let r = Fig03Result {
            points: vec![(10, 20.0), (16, 25.0)],
        };
        let text = r.to_string();
        assert!(text.contains("10"));
        assert!(text.contains("25.0%") || text.contains("25.0"));
    }
}
