//! Fig. 16: event importance under co-located workloads.
//!
//! Paper findings: 'DataCaching + DataCaching' ranks almost like solo
//! DataCaching (ISF still on top, ~3.7 %); 'DataCaching +
//! GraphAnalytics' is upended — BRE tops the list at 10.1 % and six L2
//! events enter the top-10, because the mixed footprints thrash the
//! private caches.

use super::common::{miner_config, ExpConfig};
use cm_events::{EventCatalog, EventId, EventSet};
use cm_sim::{Benchmark, ColocatedWorkload, PmuConfig, SimRun};
use counterminer::{collector, CmError, DataCleaner, ImportanceRanker};
use std::fmt;

/// One co-location scenario's importance ranking.
#[derive(Debug, Clone)]
pub struct ColocationRow {
    /// Scenario name, e.g. `DataCaching+GraphAnalytics`.
    pub name: String,
    /// `(event abbreviation, importance %)`, top 10.
    pub top10: Vec<(String, f64)>,
}

impl ColocationRow {
    /// How many top-10 events are L2-related.
    pub fn l2_count(&self) -> usize {
        self.top10
            .iter()
            .filter(|(a, _)| a.starts_with("L2"))
            .count()
    }
}

/// The Fig. 16 result: both scenarios.
#[derive(Debug, Clone)]
pub struct Fig16Result {
    /// `DataCaching + DataCaching` (homogeneous).
    pub homogeneous: ColocationRow,
    /// `DataCaching + GraphAnalytics` (heterogeneous).
    pub heterogeneous: ColocationRow,
}

impl fmt::Display for Fig16Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 16 — importance under co-location")?;
        for row in [&self.homogeneous, &self.heterogeneous] {
            write!(f, "{:<36}", row.name)?;
            for (a, v) in &row.top10 {
                write!(f, " {a}={v:.1}%")?;
            }
            writeln!(f)?;
        }
        writeln!(
            f,
            "L2 events in heterogeneous top-10: {} (paper: 6); homogeneous: {}",
            self.heterogeneous.l2_count(),
            self.homogeneous.l2_count()
        )
    }
}

fn analyze_pair(
    a: Benchmark,
    b: Benchmark,
    catalog: &EventCatalog,
    cfg: &ExpConfig,
) -> Result<ColocationRow, CmError> {
    let pair = ColocatedWorkload::new(a, b, catalog);
    let pmu = PmuConfig::default();
    let miner_cfg = miner_config(cfg);
    let n_events = miner_cfg.events_to_measure.unwrap_or(catalog.len());
    // Measure the leading catalog events plus, always, the L2 family
    // (the phenomenon under study) and both solo profiles.
    let mut events = EventSet::new();
    for suite_b in [a, b] {
        for abbrev in suite_b.importance_profile() {
            events.insert(catalog.by_abbrev(abbrev).expect("profile").id());
        }
    }
    for abbrev in ["L2H", "L2R", "L2C", "L2A", "L2M", "L2S", "BRE"] {
        events.insert(catalog.by_abbrev(abbrev).expect("named").id());
    }
    for info in catalog.iter() {
        if events.len() >= n_events {
            break;
        }
        events.insert(info.id());
    }

    let runs: Vec<SimRun> = (0..miner_cfg.runs_per_benchmark)
        .map(|i| {
            let truth = pair.generate_run(i as u32, cfg.seed);
            pmu.measure_mlpx(&pair, &truth, &events, i as u32, cfg.seed)
        })
        .collect();

    let ids: Vec<EventId> = events.iter().collect();
    let cleaner = DataCleaner::default();
    let data = collector::build_dataset(&runs, &ids, Some(&cleaner))?;
    let data = collector::normalize_columns(&data)?;
    let eir = ImportanceRanker::new(miner_cfg.importance).rank(&data, &ids)?;

    Ok(ColocationRow {
        name: pair.name().to_string(),
        top10: eir
            .top(10)
            .iter()
            .map(|&(e, v)| (catalog.info(e).abbrev().to_string(), v))
            .collect(),
    })
}

/// Runs both co-location scenarios.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run(cfg: &ExpConfig) -> Result<Fig16Result, CmError> {
    let catalog = EventCatalog::haswell();
    Ok(Fig16Result {
        homogeneous: analyze_pair(
            Benchmark::DataCaching,
            Benchmark::DataCaching,
            &catalog,
            cfg,
        )?,
        heterogeneous: analyze_pair(
            Benchmark::DataCaching,
            Benchmark::GraphAnalytics,
            &catalog,
            cfg,
        )?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_count_counts_prefixed_abbrevs() {
        let row = ColocationRow {
            name: "x+y".into(),
            top10: vec![
                ("BRE".into(), 10.0),
                ("L2H".into(), 5.0),
                ("L2R".into(), 4.0),
                ("ISF".into(), 3.0),
            ],
        };
        assert_eq!(row.l2_count(), 2);
    }

    #[test]
    fn display_shows_both_scenarios() {
        let row = |name: &str| ColocationRow {
            name: name.into(),
            top10: vec![("ISF".into(), 9.0)],
        };
        let result = Fig16Result {
            homogeneous: row("a+a"),
            heterogeneous: row("a+b"),
        };
        let text = result.to_string();
        assert!(text.contains("a+a"));
        assert!(text.contains("a+b"));
        assert!(text.contains("paper: 6"));
    }
}
