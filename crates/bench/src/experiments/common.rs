//! Shared experiment plumbing: configuration, measurement helpers.

use cm_events::{EventCatalog, EventId, EventSet, TimeSeries};
use cm_sim::{Benchmark, PmuConfig, Workload};
use counterminer::error_metrics::mlpx_error;
use counterminer::{CmError, DataCleaner};

/// How much compute an experiment may spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Full scale: the figures as reported in `EXPERIMENTS.md`.
    Full,
    /// Reduced repetitions and model sizes, for tests and smoke runs.
    Quick,
}

/// Common experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Compute scale.
    pub scale: Scale,
    /// Base seed; every experiment derives its own streams from it.
    pub seed: u64,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            scale: Scale::Full,
            seed: 2018, // the paper's publication year, for flavour
        }
    }
}

impl ExpConfig {
    /// A quick-scale configuration (used by integration tests).
    pub fn quick() -> Self {
        ExpConfig {
            scale: Scale::Quick,
            ..ExpConfig::default()
        }
    }

    /// Repetitions for error-measurement experiments.
    pub(crate) fn error_reps(&self) -> usize {
        match self.scale {
            Scale::Full => 5,
            Scale::Quick => 2,
        }
    }
}

/// Catalog + PMU shared by the experiments.
pub(crate) struct Ctx {
    pub catalog: EventCatalog,
    pub pmu: PmuConfig,
}

impl Ctx {
    pub fn new() -> Self {
        Ctx {
            catalog: EventCatalog::haswell(),
            pmu: PmuConfig::default(),
        }
    }
}

/// Measures the MLPX error (Eq. 4) of `metric_event` for one benchmark
/// with `n_events` multiplexed, averaged over `reps` seeds, optionally
/// cleaning the MLPX series first. Returns `(raw_error, cleaned_error)`
/// in percent.
pub(crate) fn event_error(
    ctx: &Ctx,
    benchmark: Benchmark,
    metric_event: EventId,
    n_events: usize,
    reps: usize,
    seed: u64,
) -> Result<(f64, f64), CmError> {
    let workload = Workload::new(benchmark, &ctx.catalog);
    let mut events: EventSet = workload.top_event_ids(&ctx.catalog, n_events);
    events.insert(metric_event);
    let cleaner = DataCleaner::default();

    let mut raw_sum = 0.0;
    let mut clean_sum = 0.0;
    for rep in 0..reps {
        let s = seed.wrapping_add(rep as u64 * 0x9E37_79B9);
        let ocoe1 = ctx.pmu.simulate_ocoe(&workload, &events, 0, s);
        let ocoe2 = ctx.pmu.simulate_ocoe(&workload, &events, 1, s);
        let mlpx = ctx.pmu.simulate_mlpx(&workload, &events, 2, s);
        let s1 = ocoe1.record.series(metric_event).expect("measured");
        let s2 = ocoe2.record.series(metric_event).expect("measured");
        let sm = mlpx.record.series(metric_event).expect("measured");
        raw_sum += mlpx_error(s1, s2, sm)?;
        let (cleaned, _) = cleaner.clean_series(sm)?;
        clean_sum += mlpx_error(s1, s2, &cleaned)?;
    }
    Ok((raw_sum / reps as f64, clean_sum / reps as f64))
}

/// Formats a percentage column.
pub(crate) fn pct(v: f64) -> String {
    format!("{v:6.1}%")
}

/// Summary stats of a series for textual "figures".
pub(crate) fn series_digest(ts: &TimeSeries) -> String {
    format!(
        "len={:4}  min={:10.1}  mean={:10.1}  max={:10.1}  zeros={}",
        ts.len(),
        ts.min().unwrap_or(0.0),
        ts.mean().unwrap_or(0.0),
        ts.max().unwrap_or(0.0),
        ts.zero_count()
    )
}

use counterminer::{AnalysisReport, CounterMiner, ImportanceConfig, MinerConfig};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Builds the pipeline configuration for the importance/interaction
/// experiments at the requested scale.
pub(crate) fn miner_config(cfg: &ExpConfig) -> MinerConfig {
    use cm_ml::{SgbrtConfig, TreeConfig};
    match cfg.scale {
        Scale::Full => MinerConfig {
            runs_per_benchmark: 4,
            events_to_measure: None, // all 229
            aggregation_window: 3,
            importance: ImportanceConfig {
                sgbrt: SgbrtConfig {
                    n_trees: 150,
                    tree: TreeConfig {
                        max_depth: 3,
                        ..TreeConfig::default()
                    },
                    ..SgbrtConfig::default()
                },
                prune_step: 10,
                min_events: 19,
                seed: cfg.seed,
                ..ImportanceConfig::default()
            },
            seed: cfg.seed,
            ..MinerConfig::default()
        },
        Scale::Quick => MinerConfig {
            runs_per_benchmark: 1,
            events_to_measure: Some(40),
            importance: ImportanceConfig {
                sgbrt: SgbrtConfig {
                    n_trees: 40,
                    ..SgbrtConfig::default()
                },
                prune_step: 10,
                min_events: 15,
                seed: cfg.seed,
                ..ImportanceConfig::default()
            },
            seed: cfg.seed,
            ..MinerConfig::default()
        },
    }
}

/// Runs the full pipeline on a list of benchmarks, caching per
/// (scale, seed, benchmark list) so experiments sharing a suite (e.g.
/// Figs. 8, 9, 11 on HiBench) reuse one analysis within a process.
pub(crate) fn analyze_benchmarks(
    cfg: &ExpConfig,
    benchmarks: &[Benchmark],
) -> Result<Arc<Vec<AnalysisReport>>, CmError> {
    type Key = (bool, u64, Vec<Benchmark>);
    type Reports = Arc<Vec<AnalysisReport>>;
    static CACHE: Mutex<Option<HashMap<Key, Reports>>> = Mutex::new(None);
    let key = (
        matches!(cfg.scale, Scale::Quick),
        cfg.seed,
        benchmarks.to_vec(),
    );
    if let Some(hit) = CACHE
        .lock()
        .expect("cache lock")
        .get_or_insert_with(HashMap::new)
        .get(&key)
    {
        return Ok(Arc::clone(hit));
    }
    let mut reports = Vec::with_capacity(benchmarks.len());
    for &b in benchmarks {
        let mut miner = CounterMiner::new(miner_config(cfg));
        reports.push(miner.analyze(b)?);
    }
    let reports = Arc::new(reports);
    CACHE
        .lock()
        .expect("cache lock")
        .get_or_insert_with(HashMap::new)
        .insert(key, Arc::clone(&reports));
    Ok(reports)
}
