//! Fig. 6: MLPX error of `ICACHE.MISSES` before vs. after data cleaning,
//! per benchmark.
//!
//! Paper: the average drops from 28.3 % to 7.7 %.

use super::common::{event_error, pct, Ctx, ExpConfig};
use cm_events::abbrev;
use cm_sim::{Benchmark, ALL_BENCHMARKS};
use counterminer::CmError;
use std::fmt;

/// Per-benchmark error before and after cleaning.
#[derive(Debug, Clone)]
pub struct Fig06Result {
    /// `(benchmark, raw error %, cleaned error %)`.
    pub rows: Vec<(Benchmark, f64, f64)>,
}

impl Fig06Result {
    /// Average raw error.
    pub fn raw_average(&self) -> f64 {
        self.rows.iter().map(|&(_, r, _)| r).sum::<f64>() / self.rows.len() as f64
    }

    /// Average cleaned error.
    pub fn cleaned_average(&self) -> f64 {
        self.rows.iter().map(|&(_, _, c)| c).sum::<f64>() / self.rows.len() as f64
    }
}

impl fmt::Display for Fig06Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 6 — error before/after cleaning (ICACHE.MISSES, 10 events)"
        )?;
        writeln!(f, "{:<22} {:>8} {:>8}", "benchmark", "raw", "cleaned")?;
        for &(b, raw, cleaned) in &self.rows {
            writeln!(
                f,
                "{:<22} {} {}",
                format!("{} ({})", b.abbrev(), b),
                pct(raw),
                pct(cleaned)
            )?;
        }
        writeln!(
            f,
            "{:<22} {} {}",
            "AVG",
            pct(self.raw_average()),
            pct(self.cleaned_average())
        )?;
        writeln!(
            f,
            "paper: avg 28.3% -> 7.7%   (measured: {:.1}% -> {:.1}%)",
            self.raw_average(),
            self.cleaned_average()
        )
    }
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run(cfg: &ExpConfig) -> Result<Fig06Result, CmError> {
    let ctx = Ctx::new();
    let icm = ctx.catalog.by_abbrev(abbrev::ICM).expect("ICM").id();
    let mut rows = Vec::with_capacity(ALL_BENCHMARKS.len());
    for b in ALL_BENCHMARKS {
        let (raw, cleaned) = event_error(&ctx, b, icm, 10, cfg.error_reps(), cfg.seed)?;
        rows.push((b, raw, cleaned));
    }
    Ok(Fig06Result { rows })
}
