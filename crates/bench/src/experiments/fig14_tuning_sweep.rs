//! Fig. 14: execution time of `sort` when sweeping bbs
//! (`spark.broadcast.blockSize`, coupled to sort's most important event
//! ORO) vs. nwt (`spark.network.timeout`, coupled to the unimportant
//! I4U).
//!
//! Paper: average execution-time variation 111.3 % when tuning bbs vs.
//! 29.4 % when tuning nwt — event importance hands you the right knob.

use super::common::ExpConfig;
use cm_events::EventCatalog;
use cm_sim::{Benchmark, SparkParam, SparkStudy};
use counterminer::case_study::{sweep_parameter, SweepResult};
use counterminer::CmError;
use std::fmt;

/// The two sweeps of Fig. 14.
#[derive(Debug, Clone)]
pub struct Fig14Result {
    /// The bbs sweep (important parameter).
    pub bbs: SweepResult,
    /// The nwt sweep (unimportant parameter).
    pub nwt: SweepResult,
}

impl fmt::Display for Fig14Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 14 — sort execution time under parameter sweeps")?;
        for (name, sweep) in [("bbs", &self.bbs), ("nwt", &self.nwt)] {
            write!(f, "{name:<4}")?;
            for (label, secs) in &sweep.points {
                write!(f, " {label}={secs:.0}s")?;
            }
            writeln!(f, "   variation = {:.1}%", sweep.variation_percent())?;
        }
        writeln!(
            f,
            "paper: 111.3% (bbs) vs 29.4% (nwt); measured {:.1}% vs {:.1}%",
            self.bbs.variation_percent(),
            self.nwt.variation_percent()
        )
    }
}

/// Runs the two sweeps.
///
/// # Errors
///
/// Propagates sweep failures.
pub fn run(cfg: &ExpConfig) -> Result<Fig14Result, CmError> {
    let catalog = EventCatalog::haswell();
    let study = SparkStudy::new(Benchmark::Sort, &catalog);
    let repeats = match cfg.scale {
        super::Scale::Full => 10,
        super::Scale::Quick => 3,
    };
    Ok(Fig14Result {
        bbs: sweep_parameter(&study, SparkParam::BroadcastBlockSize, repeats, cfg.seed)?,
        nwt: sweep_parameter(&study, SparkParam::NetworkTimeout, repeats, cfg.seed)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use counterminer::case_study::SweepResult;

    #[test]
    fn display_reports_both_variations() {
        let sweep = |base: f64| SweepResult {
            param: SparkParam::BroadcastBlockSize,
            points: vec![("2M", base), ("32M", base * 2.0)],
        };
        let result = Fig14Result {
            bbs: sweep(100.0),
            nwt: SweepResult {
                param: SparkParam::NetworkTimeout,
                points: vec![("50s", 100.0), ("500s", 120.0)],
            },
        };
        assert!((result.bbs.variation_percent() - 100.0).abs() < 1e-9);
        assert!((result.nwt.variation_percent() - 20.0).abs() < 1e-9);
        let text = result.to_string();
        assert!(text.contains("variation"));
        assert!(text.contains("111.3%")); // paper reference
    }
}
