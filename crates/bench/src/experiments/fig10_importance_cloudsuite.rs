//! Fig. 10: top-10 event importance per CloudSuite benchmark.
//!
//! Paper findings: ISF dominates most CloudSuite programs, and the
//! CloudSuite top-10 lists are *less* diverse than HiBench's despite the
//! heterogeneous frameworks (the paper's fourth, counter-intuitive
//! finding).

use super::common::{analyze_benchmarks, ExpConfig};
use super::fig09_importance_hibench::{reports_to_rows, ImportanceResult};
use cm_events::EventCatalog;
use counterminer::CmError;

/// Runs the importance pipeline on the eight CloudSuite benchmarks.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run(cfg: &ExpConfig) -> Result<ImportanceResult, CmError> {
    let catalog = EventCatalog::haswell();
    let reports = analyze_benchmarks(cfg, &cm_sim::CLOUDSUITE)?;
    Ok(ImportanceResult {
        title: "Fig. 10 — top-10 event importance, CloudSuite (MAPM)",
        rows: reports_to_rows(&reports, &catalog),
    })
}

/// Counts how many distinct events appear across all top-10 lists — the
/// diversity measure behind the paper's HiBench-vs-CloudSuite finding.
pub fn distinct_top10_events(result: &ImportanceResult) -> usize {
    let mut set = std::collections::HashSet::new();
    for row in &result.rows {
        for (abbrev, _) in &row.top10 {
            set.insert(abbrev.clone());
        }
    }
    set.len()
}
