//! Fig. 15: profiling-cost accounting — identifying important Spark
//! parameters via event importance (method A) vs. ranking parameters
//! directly (method B).
//!
//! Paper (pagerank, 90 % model accuracy): method B needs 6000 runs;
//! method A needs 60 runs to build the event model plus 1520 runs for
//! the coupling search — 1580 total, roughly a quarter of the cost.
//!
//! Alongside the cost table this experiment *measures* the learning
//! curve empirically: SGBRT accuracy on simulated pagerank data as a
//! function of training-example count, confirming the diminishing-return
//! shape the cost model assumes.

use super::common::{miner_config, Ctx, ExpConfig};
use cm_events::{EventId, SampleMode};
use cm_ml::metrics;
use cm_sim::{Benchmark, Workload};
use counterminer::case_study::ProfilingCostModel;
use counterminer::{collector, CmError, DataCleaner};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Cost rows plus the empirical accuracy curve.
#[derive(Debug, Clone)]
pub struct Fig15Result {
    /// The analytical cost model.
    pub model: ProfilingCostModel,
    /// Target accuracy used for the headline comparison.
    pub accuracy: f64,
    /// `(training examples, measured model accuracy %)`.
    pub learning_curve: Vec<(usize, f64)>,
}

impl Fig15Result {
    /// Method B cost at the headline accuracy.
    pub fn method_b(&self) -> usize {
        self.model.method_b_runs(self.accuracy)
    }

    /// Method A cost at the headline accuracy.
    pub fn method_a(&self) -> usize {
        self.model.method_a_runs(self.accuracy)
    }
}

impl fmt::Display for Fig15Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 15 — profiling cost: method A vs. method B (pagerank)"
        )?;
        writeln!(
            f,
            "method B (rank parameters directly) : {:>6} runs",
            self.method_b()
        )?;
        writeln!(
            f,
            "method A (via event importance)     : {:>6} runs \
             ({} model + {} coupling)",
            self.method_a(),
            self.model.method_a_model_runs(self.accuracy),
            self.model.coupling_runs()
        )?;
        writeln!(
            f,
            "speedup {:.1}x (paper: 6000 vs 1580 runs, ~3.8x)",
            self.model.speedup(self.accuracy)
        )?;
        writeln!(f, "empirical SGBRT learning curve (simulated pagerank):")?;
        for &(n, acc) in &self.learning_curve {
            writeln!(f, "  {n:>6} examples -> {acc:5.1}% accuracy")?;
        }
        Ok(())
    }
}

/// Runs the cost accounting and measures the learning curve.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run(cfg: &ExpConfig) -> Result<Fig15Result, CmError> {
    let ctx = Ctx::new();
    let workload = Workload::new(Benchmark::Pagerank, &ctx.catalog);
    let n_events = match cfg.scale {
        super::Scale::Full => 60,
        super::Scale::Quick => 20,
    };
    let events = workload.top_event_ids(&ctx.catalog, n_events);
    let n_runs = match cfg.scale {
        super::Scale::Full => 6,
        super::Scale::Quick => 2,
    };
    let runs = collector::collect_runs(
        &workload,
        &events,
        SampleMode::Mlpx,
        n_runs,
        &ctx.pmu,
        cfg.seed,
    );
    let ids: Vec<EventId> = events.iter().collect();
    let cleaner = DataCleaner::default();
    let data = collector::build_dataset(&runs, &ids, Some(&cleaner))?;
    let data = collector::normalize_columns(&data)?;

    // Hold out a fixed test set, then train on growing prefixes.
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let (train, test) = data.train_test_split(0.25, &mut rng)?;
    let sizes: &[usize] = match cfg.scale {
        super::Scale::Full => &[100, 200, 400, 800, 1500],
        super::Scale::Quick => &[100, 300],
    };
    let sgbrt = miner_config(cfg).importance.sgbrt;
    let mut learning_curve = Vec::new();
    for &n in sizes {
        let n = n.min(train.n_rows());
        let subset_cols: Vec<usize> = (0..train.n_features()).collect();
        let subset = train.select_features(&subset_cols)?; // clone via projection
        let limited =
            cm_ml::Dataset::new(subset.rows()[..n].to_vec(), subset.targets()[..n].to_vec())?;
        let model = sgbrt.fit(&limited)?;
        let preds = model.predict_batch(test.rows());
        let err = metrics::relative_error(test.targets(), &preds)?;
        learning_curve.push((n, (1.0 - err) * 100.0));
    }

    Ok(Fig15Result {
        model: ProfilingCostModel::default(),
        accuracy: 0.9,
        learning_curve,
    })
}
