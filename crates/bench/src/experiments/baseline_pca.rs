//! Extension: PCA feature extraction vs. model-based event importance.
//!
//! Related work (Section VI-A) extracts important counter features with
//! PCA. The paper argues PCA identifies high-*variance* events, not
//! high-*relevance*-to-performance events, and cannot quantify per-event
//! importance. This experiment measures the claim: on the same cleaned
//! multiplexed data, rank events (a) by CounterMiner's MAPM importance
//! and (b) by PCA loading importance, and score both against the
//! simulator's ground-truth top-10 profile (recall@10 and the rank of
//! the dominant event).

use super::common::{analyze_benchmarks, ExpConfig};
use cm_events::EventCatalog;
use cm_sim::{Benchmark, HIBENCH};
use cm_stats::pca::Pca;
use counterminer::{collector, CmError, DataCleaner};
use std::fmt;

/// Per-benchmark ranking quality for both methods.
#[derive(Debug, Clone)]
pub struct PcaComparisonRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Ground-truth top-10 events found in CounterMiner's top-10.
    pub counterminer_recall: usize,
    /// Ground-truth top-10 events found in PCA's top-10.
    pub pca_recall: usize,
    /// Rank (0-based) of the dominant ground-truth event under
    /// CounterMiner, if present.
    pub counterminer_dominant_rank: Option<usize>,
    /// Rank of the dominant ground-truth event under PCA, if present.
    pub pca_dominant_rank: Option<usize>,
}

/// The comparison across HiBench.
#[derive(Debug, Clone)]
pub struct BaselinePcaResult {
    /// One row per benchmark.
    pub rows: Vec<PcaComparisonRow>,
}

impl BaselinePcaResult {
    /// Mean recall@10 of CounterMiner.
    pub fn counterminer_mean_recall(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.counterminer_recall)
            .sum::<usize>() as f64
            / self.rows.len() as f64
    }

    /// Mean recall@10 of the PCA baseline.
    pub fn pca_mean_recall(&self) -> f64 {
        self.rows.iter().map(|r| r.pca_recall).sum::<usize>() as f64 / self.rows.len() as f64
    }
}

impl fmt::Display for BaselinePcaResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Extension — PCA loading importance vs. CounterMiner importance"
        )?;
        writeln!(
            f,
            "{:<14} {:>14} {:>10} {:>16} {:>12}",
            "benchmark", "CM recall@10", "PCA r@10", "CM dom. rank", "PCA dom. rank"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<14} {:>14} {:>10} {:>16} {:>12}",
                r.benchmark.to_string(),
                r.counterminer_recall,
                r.pca_recall,
                r.counterminer_dominant_rank
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "-".into()),
                r.pca_dominant_rank
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "-".into()),
            )?;
        }
        writeln!(
            f,
            "mean recall@10: CounterMiner {:.1} vs PCA {:.1} — PCA ranks by variance, \
             not performance relevance (the paper's Section VI-A argument)",
            self.counterminer_mean_recall(),
            self.pca_mean_recall()
        )
    }
}

/// Runs the comparison.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run(cfg: &ExpConfig) -> Result<BaselinePcaResult, CmError> {
    let catalog = EventCatalog::haswell();
    let reports = analyze_benchmarks(cfg, &HIBENCH)?;
    let miner_cfg = super::common::miner_config(cfg);
    let pmu = miner_cfg.pmu;
    let cleaner = DataCleaner::new(miner_cfg.cleaner);

    let mut rows = Vec::with_capacity(reports.len());
    for report in reports.iter() {
        let benchmark = report.benchmark;
        let profile: Vec<&str> = benchmark.importance_profile().to_vec();
        let dominant = profile[0];

        // CounterMiner ranking from the shared analysis.
        let cm_top: Vec<String> = report
            .eir
            .top(10)
            .iter()
            .map(|&(e, _)| catalog.info(e).abbrev().to_string())
            .collect();

        // PCA baseline over the same kind of cleaned measured data.
        let workload = cm_sim::Workload::new(benchmark, &catalog);
        let n_events = miner_cfg.events_to_measure.unwrap_or(catalog.len());
        let events = workload.top_event_ids(&catalog, n_events);
        let runs = collector::collect_runs(
            &workload,
            &events,
            cm_events::SampleMode::Mlpx,
            miner_cfg.runs_per_benchmark,
            &pmu,
            cfg.seed ^ 0xBEEF,
        );
        let ids: Vec<cm_events::EventId> = events.iter().collect();
        let data = collector::build_dataset(&runs, &ids, Some(&cleaner))?;
        let data = collector::normalize_columns(&data)?;
        // The baseline only needs the leading components for a ranking;
        // a rank-deficient run should yield fewer, not fail.
        let pca = Pca::fit_up_to(data.rows(), 10).map_err(CmError::Stats)?;
        let scores = pca.loading_importance();
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
        let pca_top: Vec<String> = order[..10.min(order.len())]
            .iter()
            .map(|&i| catalog.info(ids[i]).abbrev().to_string())
            .collect();

        let recall = |top: &[String]| top.iter().filter(|a| profile.contains(&a.as_str())).count();
        let rank_of = |top: &[String], target: &str| top.iter().position(|a| a == target);

        rows.push(PcaComparisonRow {
            benchmark,
            counterminer_recall: recall(&cm_top),
            pca_recall: recall(&pca_top),
            counterminer_dominant_rank: rank_of(&cm_top, dominant),
            pca_dominant_rank: rank_of(&pca_top, dominant),
        });
    }
    Ok(BaselinePcaResult { rows })
}
