//! Extension: actually *running* method B (direct parameter ranking)
//! instead of only costing it.
//!
//! Fig. 15 argues method B — model execution time as a function of the
//! configuration parameters and rank parameter importance directly —
//! needs thousands of runs because each training example costs a full
//! run. This experiment performs method B on simulated pagerank at
//! several run budgets and scores how well the recovered parameter
//! ranking matches the ground truth (parameters coupled to important
//! events), demonstrating the slow convergence the paper's accounting
//! assumes.

use super::common::ExpConfig;
use cm_events::EventCatalog;
use cm_ml::{Dataset, SgbrtConfig};
use cm_sim::{Benchmark, SparkConfig, SparkStudy, ALL_PARAMS};
use counterminer::CmError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Ranking quality at one run budget.
#[derive(Debug, Clone)]
pub struct BudgetPoint {
    /// Number of (configuration, execution time) examples = runs spent.
    pub runs: usize,
    /// Ground-truth top-4 parameters found in the recovered top-4.
    pub recall_at_4: usize,
    /// Rank (0-based) of the single most important parameter, if it was
    /// recovered at all.
    pub top_param_rank: Option<usize>,
}

/// The method-B convergence study.
#[derive(Debug, Clone)]
pub struct MethodBResult {
    /// Ground-truth top-4 parameter abbreviations.
    pub truth_top4: Vec<&'static str>,
    /// Quality per run budget, ascending.
    pub budgets: Vec<BudgetPoint>,
}

impl fmt::Display for MethodBResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Extension — method B run directly (pagerank): parameter ranking vs run budget"
        )?;
        writeln!(f, "ground-truth top-4 parameters: {:?}", self.truth_top4)?;
        for p in &self.budgets {
            writeln!(
                f,
                "  {:>5} runs: recall@4 = {}/4, top parameter ranked {}",
                p.runs,
                p.recall_at_4,
                p.top_param_rank
                    .map(|r| format!("#{}", r + 1))
                    .unwrap_or_else(|| "outside".into())
            )?;
        }
        writeln!(
            f,
            "method A reaches the equivalent insight from ~60 profiled runs \
             (its per-interval samples are free examples — the paper's Fig. 15 point)"
        )
    }
}

/// Runs method B at several budgets.
///
/// # Errors
///
/// Propagates model-training failures.
pub fn run(cfg: &ExpConfig) -> Result<MethodBResult, CmError> {
    let catalog = EventCatalog::haswell();
    let study = SparkStudy::new(Benchmark::Pagerank, &catalog);

    // Ground truth: parameters ranked by the importance weight of their
    // coupled event (plus the floor every parameter carries).
    let mut truth: Vec<(&'static str, f64)> = ALL_PARAMS
        .iter()
        .map(|&p| {
            let w = study.workload().model().weight(study.coupled_event_id(p));
            (p.abbrev(), 0.08 + w)
        })
        .collect();
    truth.sort_by(|a, b| b.1.total_cmp(&a.1));
    let truth_top4: Vec<&'static str> = truth.iter().take(4).map(|&(a, _)| a).collect();

    let budgets_list: &[usize] = match cfg.scale {
        super::Scale::Full => &[50, 200, 800, 3000],
        super::Scale::Quick => &[50, 200],
    };

    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xB00B5);
    let mut budgets = Vec::new();
    for &runs in budgets_list {
        // One run per example: random configuration -> execution time.
        let mut rows = Vec::with_capacity(runs);
        let mut times = Vec::with_capacity(runs);
        for r in 0..runs {
            let mut config = SparkConfig::new();
            let mut row = Vec::with_capacity(ALL_PARAMS.len());
            for &p in ALL_PARAMS.iter() {
                let setting: f64 = rng.gen_range(0.0..=1.0);
                config = config.with(p, setting);
                row.push(setting);
            }
            rows.push(row);
            times.push(study.exec_time(&config, r as u32, cfg.seed));
        }
        let data = Dataset::new(rows, times).map_err(CmError::Ml)?;
        let model = SgbrtConfig {
            n_trees: 120,
            seed: cfg.seed,
            ..SgbrtConfig::default()
        }
        .fit(&data)
        .map_err(CmError::Ml)?;
        let importances = model.feature_importances();
        let mut order: Vec<usize> = (0..ALL_PARAMS.len()).collect();
        order.sort_by(|&a, &b| importances[b].total_cmp(&importances[a]));
        let predicted: Vec<&'static str> = order.iter().map(|&i| ALL_PARAMS[i].abbrev()).collect();

        let recall_at_4 = predicted[..4]
            .iter()
            .filter(|a| truth_top4.contains(a))
            .count();
        let top_param_rank = predicted.iter().position(|&a| a == truth_top4[0]);
        budgets.push(BudgetPoint {
            runs,
            recall_at_4,
            top_param_rank,
        });
    }

    Ok(MethodBResult {
        truth_top4,
        budgets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_does_not_degrade_with_budget() {
        let result = run(&ExpConfig::quick()).unwrap();
        assert_eq!(result.budgets.len(), 2);
        let first = result.budgets.first().unwrap().recall_at_4;
        let last = result.budgets.last().unwrap().recall_at_4;
        assert!(
            last >= first,
            "more runs should not hurt: {first} -> {last}"
        );
        assert_eq!(result.truth_top4.len(), 4);
    }
}
