//! Ablation: EIR design choices — the pruning step size (the paper
//! removes 10 events per iteration) and the window-aggregation width.
//!
//! Both knobs trade compute for accuracy: a large prune step reaches the
//! MAPM in fewer (expensive) retraining rounds but may overshoot; a
//! wider aggregation window reduces per-example measurement noise but
//! shrinks the training set.

use super::common::{miner_config, ExpConfig};
use cm_sim::Benchmark;
use counterminer::{CmError, CounterMiner};
use std::fmt;

/// One ablation point.
#[derive(Debug, Clone)]
pub struct AblationPoint {
    /// The knob value.
    pub value: usize,
    /// MAPM held-out error, percent.
    pub mapm_error: f64,
    /// EIR iterations performed (the retraining cost).
    pub iterations: usize,
}

/// The EIR ablation result.
#[derive(Debug, Clone)]
pub struct AblationEirResult {
    /// Prune-step sweep (paper default: 10).
    pub prune_steps: Vec<AblationPoint>,
    /// Aggregation-window sweep (pipeline default: 3).
    pub windows: Vec<AblationPoint>,
}

impl fmt::Display for AblationEirResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation — EIR design choices (wordcount)")?;
        writeln!(f, "prune step sweep:")?;
        for p in &self.prune_steps {
            writeln!(
                f,
                "  step {:>3}: MAPM error {:5.1}%  ({} retraining rounds)",
                p.value, p.mapm_error, p.iterations
            )?;
        }
        writeln!(f, "aggregation window sweep:")?;
        for p in &self.windows {
            writeln!(
                f,
                "  window {:>2}: MAPM error {:5.1}%  ({} rounds)",
                p.value, p.mapm_error, p.iterations
            )?;
        }
        writeln!(
            f,
            "the paper's step of 10 balances accuracy against retraining cost"
        )
    }
}

/// Runs the ablation on wordcount.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run(cfg: &ExpConfig) -> Result<AblationEirResult, CmError> {
    let base = miner_config(cfg);

    let mut prune_steps = Vec::new();
    for step in [5usize, 10, 20, 40] {
        let mut config = base;
        config.importance.prune_step = step;
        let mut miner = CounterMiner::new(config);
        let report = miner.analyze(Benchmark::Wordcount)?;
        prune_steps.push(AblationPoint {
            value: step,
            mapm_error: report.eir.best_error() * 100.0,
            iterations: report.eir.iterations.len(),
        });
    }

    let mut windows = Vec::new();
    for window in [1usize, 3, 6] {
        let mut config = base;
        config.aggregation_window = window;
        let mut miner = CounterMiner::new(config);
        let report = miner.analyze(Benchmark::Wordcount)?;
        windows.push(AblationPoint {
            value: window,
            mapm_error: report.eir.best_error() * 100.0,
            iterations: report.eir.iterations.len(),
        });
    }

    Ok(AblationEirResult {
        prune_steps,
        windows,
    })
}
