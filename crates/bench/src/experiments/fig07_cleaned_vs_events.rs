//! Fig. 7: MLPX error before vs. after cleaning, as the number of
//! multiplexed events grows.
//!
//! Paper (cleaned): 10→5.3 %, 16→17.1 %, 20→6.8 %, 24→23.6 %, 28→29.0 %,
//! 32→13.4 %, 36→29.4 % — cleaning cuts the error at every point, but
//! beyond ~20 events some cleaned errors stay high (the paper's
//! recommendation: don't multiplex more than 20).

use super::common::{event_error, pct, Ctx, ExpConfig};
use super::fig03_error_vs_events::EVENT_COUNTS;
use cm_events::abbrev;
use cm_sim::HIBENCH;
use counterminer::CmError;
use std::fmt;

/// Raw and cleaned error per multiplexed-event count.
#[derive(Debug, Clone)]
pub struct Fig07Result {
    /// `(n_events, raw error %, cleaned error %)`.
    pub points: Vec<(usize, f64, f64)>,
}

impl Fig07Result {
    /// Cleaned error at the 10-event point (paper: 5.3 %).
    pub fn cleaned_at_10(&self) -> f64 {
        self.points
            .iter()
            .find(|&&(n, _, _)| n == 10)
            .map(|&(_, _, c)| c)
            .expect("10-event point present")
    }
}

impl fmt::Display for Fig07Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 7 — error before/after cleaning vs. events multiplexed"
        )?;
        writeln!(f, "{:>8} {:>8} {:>8}", "events", "raw", "cleaned")?;
        for &(n, raw, cleaned) in &self.points {
            writeln!(f, "{n:>8} {} {}", pct(raw), pct(cleaned))?;
        }
        writeln!(
            f,
            "paper: cleaning reduces the error at every point; cleaned error at 10 events 5.3%"
        )
    }
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run(cfg: &ExpConfig) -> Result<Fig07Result, CmError> {
    let ctx = Ctx::new();
    let icm = ctx.catalog.by_abbrev(abbrev::ICM).expect("ICM").id();
    let mut points = Vec::with_capacity(EVENT_COUNTS.len());
    for &n in &EVENT_COUNTS {
        let mut raw_sum = 0.0;
        let mut clean_sum = 0.0;
        for b in HIBENCH {
            let (raw, cleaned) =
                event_error(&ctx, b, icm, n, cfg.error_reps(), cfg.seed ^ n as u64)?;
            raw_sum += raw;
            clean_sum += cleaned;
        }
        points.push((
            n,
            raw_sum / HIBENCH.len() as f64,
            clean_sum / HIBENCH.len() as f64,
        ));
    }
    Ok(Fig07Result { points })
}
