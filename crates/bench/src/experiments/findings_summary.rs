//! The paper's six headline findings (Section I), measured end-to-end
//! over all sixteen benchmarks.

use super::common::{analyze_benchmarks, ExpConfig};
use cm_events::EventCatalog;
use counterminer::findings;
use counterminer::CmError;
use std::fmt;

/// All six findings, quantified.
#[derive(Debug, Clone)]
pub struct FindingsResult {
    /// Benchmarks (of 16) whose top event is ISF (finding 1).
    pub isf_top: usize,
    /// Per-benchmark dominant-event counts (one-three SMI law,
    /// finding 3).
    pub smi_counts: Vec<(String, usize)>,
    /// Fraction of top interaction pairs involving a branch event
    /// (finding 2; paper: 83.4 %).
    pub branch_share: f64,
    /// Events common to ≥ 6 benchmarks' top-10 lists (finding 5).
    pub common_events: Vec<(String, cm_events::EventKind, usize)>,
    /// Distinct top-10 events, HiBench (finding 6).
    pub hibench_distinct: usize,
    /// Distinct top-10 events, CloudSuite (finding 6).
    pub cloudsuite_distinct: usize,
    /// Dominant interaction-pair share per benchmark (Section V-C).
    pub dominant_pairs: Vec<(String, f64)>,
}

impl fmt::Display for FindingsResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "The paper's headline findings, measured")?;
        writeln!(
            f,
            "1. ISF is the most important event for {}/16 benchmarks \
             (paper: 'most cloud programs')",
            self.isf_top
        )?;
        writeln!(
            f,
            "2. {:.1}% of top interaction pairs involve a branch event (paper: 83.4%)",
            self.branch_share * 100.0
        )?;
        let in_law = self
            .smi_counts
            .iter()
            .filter(|(_, c)| (1..=3).contains(c))
            .count();
        writeln!(
            f,
            "3. one-three SMI law holds for {in_law}/{} benchmarks",
            self.smi_counts.len()
        )?;
        writeln!(
            f,
            "4. noisy events can be removed: see fig08 (pruning ~80 events costs nothing)"
        )?;
        write!(f, "5. common important events (>=6 benchmarks): ")?;
        for (abbrev, kind, count) in self.common_events.iter().take(10) {
            write!(f, "{abbrev}({kind},{count}) ")?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "6. distinct top-10 events: HiBench {} vs CloudSuite {} \
             (paper: HiBench more diverse)",
            self.hibench_distinct, self.cloudsuite_distinct
        )?;
        writeln!(f, "dominant interaction-pair share per benchmark:")?;
        for (name, share) in &self.dominant_pairs {
            writeln!(f, "  {name:<20} {share:5.1}%")?;
        }
        Ok(())
    }
}

/// Runs both suites (reusing cached analyses) and computes the findings.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run(cfg: &ExpConfig) -> Result<FindingsResult, CmError> {
    let catalog = EventCatalog::haswell();
    let hibench = analyze_benchmarks(cfg, &cm_sim::HIBENCH)?;
    let cloudsuite = analyze_benchmarks(cfg, &cm_sim::CLOUDSUITE)?;
    let n_total = hibench.len() + cloudsuite.len();

    // The findings helpers take &[AnalysisReport]; we have two Arcs, so
    // compute suite-wise and merge.
    let mut smi_counts = findings::smi_dominant_counts(&hibench, 2.0);
    smi_counts.extend(findings::smi_dominant_counts(&cloudsuite, 2.0));

    let isf_top = findings::isf_top_count(&hibench, &catalog)
        + findings::isf_top_count(&cloudsuite, &catalog);

    let total_pairs = (findings::branch_pair_share(&hibench, &catalog, 10) * hibench.len() as f64
        + findings::branch_pair_share(&cloudsuite, &catalog, 10) * cloudsuite.len() as f64)
        / n_total as f64;

    let mut common = findings::common_important_events(&hibench, &catalog, 1);
    let cloud_common = findings::common_important_events(&cloudsuite, &catalog, 1);
    // Merge counts across suites.
    for (abbrev, kind, count) in cloud_common {
        match common.iter_mut().find(|(a, _, _)| *a == abbrev) {
            Some(slot) => slot.2 += count,
            None => common.push((abbrev, kind, count)),
        }
    }
    common.retain(|&(_, _, c)| c >= 6);
    common.sort_by_key(|&(_, _, count)| std::cmp::Reverse(count));

    let mut dominant_pairs = findings::dominant_pair_shares(&hibench);
    dominant_pairs.extend(findings::dominant_pair_shares(&cloudsuite));

    Ok(FindingsResult {
        isf_top,
        smi_counts,
        branch_share: total_pairs,
        common_events: common,
        hibench_distinct: findings::distinct_top10_events(&hibench, &catalog),
        cloudsuite_distinct: findings::distinct_top10_events(&cloudsuite, &catalog),
        dominant_pairs,
    })
}
