//! Fig. 8: performance-model error vs. the number of input events during
//! EIR, averaged over the HiBench benchmarks.
//!
//! Paper: 14 % with all 229 events, a minimum of 6.3 % around 150
//! events, 9.6 % at 99, back to 14 % at 59 — a U-shaped curve showing
//! that a modern processor's event list contains many noisy events.

use super::common::{analyze_benchmarks, ExpConfig};
use cm_sim::HIBENCH;
use counterminer::CmError;
use std::collections::BTreeMap;
use std::fmt;

/// The averaged EIR error curve.
#[derive(Debug, Clone)]
pub struct Fig08Result {
    /// `(n_events, mean error %)` in descending event count.
    pub curve: Vec<(usize, f64)>,
}

impl Fig08Result {
    /// The event count with the lowest average error (the MAPM point).
    pub fn best_point(&self) -> (usize, f64) {
        self.curve
            .iter()
            .copied()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("curve is non-empty")
    }

    /// Error of the full-event model (the first curve point).
    pub fn full_model_error(&self) -> f64 {
        self.curve.first().expect("non-empty").1
    }
}

impl fmt::Display for Fig08Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 8 — EIR model error vs. number of input events (HiBench mean)"
        )?;
        writeln!(f, "{:>8} {:>8}", "events", "error")?;
        for &(n, e) in &self.curve {
            writeln!(f, "{n:>8} {e:>7.1}%")?;
        }
        let (best_n, best_e) = self.best_point();
        writeln!(
            f,
            "minimum {best_e:.1}% at {best_n} events; full model {:.1}% \
             (paper: min 6.3% near 150, 14% at 229)",
            self.full_model_error()
        )
    }
}

/// Runs EIR on every HiBench benchmark and averages the error curves by
/// event count.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run(cfg: &ExpConfig) -> Result<Fig08Result, CmError> {
    let reports = analyze_benchmarks(cfg, &HIBENCH)?;
    let mut acc: BTreeMap<usize, (f64, usize)> = BTreeMap::new();
    for report in reports.iter() {
        for it in &report.eir.iterations {
            let slot = acc.entry(it.n_events).or_insert((0.0, 0));
            slot.0 += it.error * 100.0;
            slot.1 += 1;
        }
    }
    let curve: Vec<(usize, f64)> = acc
        .into_iter()
        .rev()
        .map(|(n, (sum, count))| (n, sum / count as f64))
        .collect();
    Ok(Fig08Result { curve })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_point_and_full_error() {
        let r = Fig08Result {
            curve: vec![(229, 16.0), (150, 12.0), (59, 14.0)],
        };
        assert_eq!(r.best_point(), (150, 12.0));
        assert_eq!(r.full_model_error(), 16.0);
        let text = r.to_string();
        assert!(text.contains("150"));
        assert!(text.contains("minimum"));
    }
}
