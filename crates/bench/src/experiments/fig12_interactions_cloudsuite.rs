//! Fig. 12: top-10 event-pair interaction intensities per CloudSuite
//! benchmark.
//!
//! Paper finding: CloudSuite's dominant pairs are *stronger* than
//! HiBench's — more software tiers produce stronger interactions
//! (WebServing's top pair reaches 64 % vs. GraphAnalytics' 19 %).

use super::common::{analyze_benchmarks, ExpConfig};
use super::fig11_interactions_hibench::{reports_to_interaction_rows, InteractionResult};
use cm_events::EventCatalog;
use cm_sim::Benchmark;
use counterminer::CmError;

/// Runs the interaction pipeline on the eight CloudSuite benchmarks.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run(cfg: &ExpConfig) -> Result<InteractionResult, CmError> {
    let catalog = EventCatalog::haswell();
    let reports = analyze_benchmarks(cfg, &cm_sim::CLOUDSUITE)?;
    Ok(InteractionResult {
        title: "Fig. 12 — top interaction pairs, CloudSuite",
        rows: reports_to_interaction_rows(&reports, &catalog),
    })
}

/// Top-pair share for one benchmark in a result, if present.
pub fn top_share(result: &InteractionResult, benchmark: Benchmark) -> Option<f64> {
    result
        .rows
        .iter()
        .find(|r| r.benchmark == benchmark)
        .map(|r| r.top10[0].1)
}
