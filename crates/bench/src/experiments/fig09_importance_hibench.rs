//! Fig. 9: top-10 event importance per HiBench benchmark, from the MAPM.
//!
//! Paper findings checked here: the one-three SMI law (the leading one
//! to three events are far more important than the rest), ISF/BRE
//! leading most benchmarks, and per-benchmark diversity of rankings.

use super::common::{analyze_benchmarks, ExpConfig};
use cm_events::EventCatalog;
use cm_sim::Benchmark;
use counterminer::{AnalysisReport, CmError};
use std::fmt;

/// One benchmark's top-10 importance list.
#[derive(Debug, Clone)]
pub struct ImportanceRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// `(event abbreviation, importance %)`, descending.
    pub top10: Vec<(String, f64)>,
}

/// Importance rankings for a benchmark suite.
#[derive(Debug, Clone)]
pub struct ImportanceResult {
    /// Figure title.
    pub title: &'static str,
    /// One row per benchmark.
    pub rows: Vec<ImportanceRow>,
}

impl ImportanceResult {
    /// Fraction of benchmarks whose top event is one of the given
    /// abbreviations.
    pub fn top_event_share(&self, abbrevs: &[&str]) -> f64 {
        let hits = self
            .rows
            .iter()
            .filter(|r| abbrevs.contains(&r.top10[0].0.as_str()))
            .count();
        hits as f64 / self.rows.len() as f64
    }

    /// Checks the one-three SMI law for a row: the leading events'
    /// importance clearly exceeds the tail's.
    pub fn smi_ratio(row: &ImportanceRow) -> f64 {
        let head = row.top10[0].1;
        let tail = row.top10.get(5).map(|&(_, v)| v).unwrap_or(0.0);
        if tail > 0.0 {
            head / tail
        } else {
            f64::INFINITY
        }
    }
}

impl fmt::Display for ImportanceResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        for row in &self.rows {
            write!(f, "{:<20}", row.benchmark.to_string())?;
            for (abbrev, pct) in &row.top10 {
                write!(f, " {abbrev}={pct:.1}%")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

pub(crate) fn reports_to_rows(
    reports: &[AnalysisReport],
    catalog: &EventCatalog,
) -> Vec<ImportanceRow> {
    reports
        .iter()
        .map(|r| ImportanceRow {
            benchmark: r.benchmark,
            top10: r
                .eir
                .top(10)
                .iter()
                .map(|&(e, v)| (catalog.info(e).abbrev().to_string(), v))
                .collect(),
        })
        .collect()
}

/// Runs the importance pipeline on the eight HiBench benchmarks.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run(cfg: &ExpConfig) -> Result<ImportanceResult, CmError> {
    let catalog = EventCatalog::haswell();
    let reports = analyze_benchmarks(cfg, &cm_sim::HIBENCH)?;
    Ok(ImportanceResult {
        title: "Fig. 9 — top-10 event importance, HiBench (MAPM)",
        rows: reports_to_rows(&reports, &catalog),
    })
}
