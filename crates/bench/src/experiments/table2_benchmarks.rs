//! Table II: the sixteen evaluated benchmarks with their suites,
//! frameworks, and categories.

use cm_sim::{Benchmark, ALL_BENCHMARKS};
use std::fmt;

/// The benchmark inventory.
#[derive(Debug, Clone)]
pub struct Table2Result {
    /// All benchmarks in figure order.
    pub benchmarks: Vec<Benchmark>,
}

impl fmt::Display for Table2Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table II — evaluated benchmarks")?;
        writeln!(
            f,
            "{:<20} {:<6} {:<12} {:<28} category",
            "benchmark", "abbr", "suite", "framework"
        )?;
        for &b in &self.benchmarks {
            writeln!(
                f,
                "{:<20} {:<6} {:<12} {:<28} {}",
                b.to_string(),
                b.abbrev(),
                b.suite().to_string(),
                b.framework(),
                b.category()
            )?;
        }
        Ok(())
    }
}

/// Builds the table.
pub fn run() -> Table2Result {
    Table2Result {
        benchmarks: ALL_BENCHMARKS.to_vec(),
    }
}
