//! Fig. 2: concrete outlier and missing-value examples from wordcount.
//!
//! (a) the `IDQ.DSB_UOPS` series measured by MLPX contains spikes ~4× the
//! OCOE level; (b) the `ICACHE.MISSES` cold-start misses visible under
//! OCOE are absent (zero) under MLPX.

use super::common::{series_digest, Ctx, ExpConfig};
use cm_events::{abbrev, EventSet, TimeSeries};
use cm_sim::{Benchmark, Workload};
use counterminer::CmError;
use std::fmt;

/// The two example series pairs.
#[derive(Debug, Clone)]
pub struct Fig02Result {
    /// `IDQ.DSB_UOPS` measured by OCOE (reference).
    pub idu_ocoe: TimeSeries,
    /// `IDQ.DSB_UOPS` measured by MLPX (with outliers).
    pub idu_mlpx: TimeSeries,
    /// `ICACHE.MISSES` measured by OCOE (cold-start spike present).
    pub icm_ocoe: TimeSeries,
    /// `ICACHE.MISSES` measured by MLPX (cold-start samples missing).
    pub icm_mlpx: TimeSeries,
}

impl Fig02Result {
    /// The largest MLPX/OCOE-max ratio in the outlier example — the
    /// paper reports a ~4.2× spike.
    pub fn outlier_ratio(&self) -> f64 {
        let ocoe_max = self.idu_ocoe.max().unwrap_or(1.0);
        self.idu_mlpx.max().unwrap_or(0.0) / ocoe_max
    }

    /// Missing (zero) samples in the MLPX instruction-cache series that
    /// are non-zero under OCOE.
    pub fn missing_count(&self) -> usize {
        self.icm_mlpx.zero_count()
    }

    /// Cold-start misses visible under OCOE: mean of the first 5 % of
    /// samples over the mean of the rest.
    pub fn ocoe_cold_start_ratio(&self) -> f64 {
        let v = self.icm_ocoe.values();
        let head = v.len() / 20;
        let early: f64 = v[..head].iter().sum::<f64>() / head as f64;
        let late: f64 = v[head..].iter().sum::<f64>() / (v.len() - head) as f64;
        early / late
    }
}

impl fmt::Display for Fig02Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 2 — outlier and missing-value examples (wordcount)")?;
        writeln!(f, "(a) IDQ.DSB_UOPS")?;
        writeln!(f, "  OCOE: {}", series_digest(&self.idu_ocoe))?;
        writeln!(f, "  MLPX: {}", series_digest(&self.idu_mlpx))?;
        writeln!(
            f,
            "  largest MLPX spike = {:.1}x the OCOE max (paper: ~4.2x)",
            self.outlier_ratio()
        )?;
        writeln!(f, "(b) ICACHE.MISSES")?;
        writeln!(f, "  OCOE: {}", series_digest(&self.icm_ocoe))?;
        writeln!(f, "  MLPX: {}", series_digest(&self.icm_mlpx))?;
        writeln!(
            f,
            "  OCOE cold-start ratio = {:.1}x; MLPX missing samples = {}",
            self.ocoe_cold_start_ratio(),
            self.missing_count()
        )
    }
}

/// Generates the example series (10 events multiplexed on 4 counters).
///
/// # Errors
///
/// Returns an error only if the simulator fails to produce the series
/// (which would indicate a harness bug).
pub fn run(cfg: &ExpConfig) -> Result<Fig02Result, CmError> {
    let ctx = Ctx::new();
    let workload = Workload::new(Benchmark::Wordcount, &ctx.catalog);
    let events: EventSet = workload.top_event_ids(&ctx.catalog, 10);
    let idu = ctx.catalog.by_abbrev(abbrev::IDU).expect("IDU").id();
    let icm = ctx.catalog.by_abbrev(abbrev::ICM).expect("ICM").id();

    // Search a few seeds for a run pair that clearly shows both
    // phenomena (the paper, too, picked an illustrative run).
    let mut best: Option<(f64, Fig02Result)> = None;
    for k in 0..8u64 {
        let seed = cfg.seed.wrapping_add(k * 7919);
        let ocoe = ctx.pmu.simulate_ocoe(&workload, &events, 0, seed);
        let mlpx = ctx.pmu.simulate_mlpx(&workload, &events, 1, seed);
        let candidate = Fig02Result {
            idu_ocoe: ocoe.record.series(idu).expect("IDU measured").clone(),
            idu_mlpx: mlpx.record.series(idu).expect("IDU measured").clone(),
            icm_ocoe: ocoe.record.series(icm).expect("ICM measured").clone(),
            icm_mlpx: mlpx.record.series(icm).expect("ICM measured").clone(),
        };
        let score =
            candidate.outlier_ratio().min(5.0) + candidate.missing_count().min(20) as f64 * 0.2;
        if best.as_ref().is_none_or(|(s, _)| score > *s) {
            best = Some((score, candidate));
        }
    }
    Ok(best.expect("at least one candidate").1)
}
