//! Table IV: the Spark configuration parameters that interact strongly
//! with important events, with abbreviations and coupled events.

use cm_sim::{SparkParam, ALL_PARAMS};
use std::fmt;

/// The parameter table.
#[derive(Debug, Clone)]
pub struct Table4Result {
    /// All modeled parameters.
    pub params: Vec<SparkParam>,
}

impl fmt::Display for Table4Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table IV — Spark configuration parameters")?;
        writeln!(
            f,
            "{:<6} {:<44} {:<8} sweep",
            "abbr", "spark property", "event"
        )?;
        for &p in &self.params {
            writeln!(
                f,
                "{:<6} {:<44} {:<8} {}",
                p.abbrev(),
                p.spark_name(),
                p.coupled_event(),
                p.sweep_labels().join("/")
            )?;
        }
        Ok(())
    }
}

/// Builds the table.
pub fn run() -> Table4Result {
    Table4Result {
        params: ALL_PARAMS.to_vec(),
    }
}
