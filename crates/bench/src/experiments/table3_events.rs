//! Table III: the event abbreviations appearing in the top-10 importance
//! lists, with their full names and descriptions.

use cm_events::{abbrev, EventCatalog};
use std::fmt;

/// The named-event table.
#[derive(Debug, Clone)]
pub struct Table3Result {
    /// `(abbreviation, perf-style name, description)`.
    pub rows: Vec<(String, String, String)>,
}

impl fmt::Display for Table3Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table III — events in the top-10 importance lists")?;
        writeln!(f, "{:<6} {:<52} description", "abbr", "event")?;
        for (a, name, desc) in &self.rows {
            writeln!(f, "{a:<6} {name:<52} {desc}")?;
        }
        Ok(())
    }
}

/// Builds the table from the catalog.
pub fn run() -> Table3Result {
    let catalog = EventCatalog::haswell();
    Table3Result {
        rows: abbrev::ALL_NAMED
            .iter()
            .map(|a| {
                let info = catalog.by_abbrev(a).expect("named abbrev in catalog");
                (
                    info.abbrev().to_string(),
                    info.name().to_string(),
                    info.description().to_string(),
                )
            })
            .collect(),
    }
}
