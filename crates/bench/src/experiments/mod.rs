//! Experiment modules, one per paper table/figure. See the
//! per-experiment index in `DESIGN.md`.

pub mod ablation_cleaning;
pub mod ablation_eir;
pub mod baseline_pca;
pub mod baseline_scheduling;
pub mod baseline_subinterval;
pub mod fig01_mlpx_error;
pub mod fig02_dirty_examples;
pub mod fig03_error_vs_events;
pub mod fig05_cleaning_examples;
pub mod fig06_error_reduction;
pub mod fig07_cleaned_vs_events;
pub mod fig08_eir_curve;
pub mod fig09_importance_hibench;
pub mod fig10_importance_cloudsuite;
pub mod fig11_interactions_hibench;
pub mod fig12_interactions_cloudsuite;
pub mod fig13_param_event_interactions;
pub mod fig14_tuning_sweep;
pub mod fig15_profiling_cost;
pub mod fig16_colocation;
pub mod findings_summary;
pub mod method_b_direct;
pub mod table1_threshold_coverage;
pub mod table2_benchmarks;
pub mod table3_events;
pub mod table4_spark_params;

mod common;

pub use common::{ExpConfig, Scale};
