//! Table I: fraction of collected event data within the outlier
//! threshold `mean + n·std`, for n = 3..7, per benchmark.
//!
//! Paper: at n = 5 every program exceeds 99 % coverage, so the cleaner
//! uses n = 5 for long-tail series.

use super::common::{Ctx, ExpConfig};
use cm_sim::{Benchmark, Workload, ALL_BENCHMARKS};
use counterminer::{coverage_table, CmError, N_CANDIDATES};
use std::fmt;

/// Per-benchmark coverage rows.
#[derive(Debug, Clone)]
pub struct Table1Result {
    /// `(benchmark, coverage per n-candidate)`.
    pub rows: Vec<(Benchmark, [(f64, f64); 5])>,
}

impl Table1Result {
    /// Smallest candidate `n` whose coverage reaches 99 % for every
    /// benchmark (the paper lands on 5).
    pub fn universal_n(&self) -> Option<f64> {
        for idx in 0..N_CANDIDATES.len() {
            if self.rows.iter().all(|(_, cov)| cov[idx].1 >= 0.99) {
                return Some(N_CANDIDATES[idx]);
            }
        }
        None
    }
}

impl fmt::Display for Table1Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table I — data within mean + n*std per benchmark")?;
        write!(f, "{:<22}", "benchmark")?;
        for n in N_CANDIDATES {
            write!(f, " {:>7}", format!("n={n}"))?;
        }
        writeln!(f)?;
        for (b, cov) in &self.rows {
            write!(f, "{:<22}", b.to_string())?;
            for &(_, frac) in cov {
                write!(f, " {:>6.2}%", frac * 100.0)?;
            }
            writeln!(f)?;
        }
        match self.universal_n() {
            Some(n) => writeln!(
                f,
                "smallest n with >=99% coverage everywhere: {n} (paper: 5)"
            ),
            None => writeln!(f, "no candidate reaches 99% coverage everywhere"),
        }
    }
}

/// Runs the experiment: multiplexes 10 events per benchmark, pools all
/// measured values, and tabulates threshold coverage.
///
/// # Errors
///
/// Propagates statistics failures.
pub fn run(cfg: &ExpConfig) -> Result<Table1Result, CmError> {
    let ctx = Ctx::new();
    let mut rows = Vec::with_capacity(ALL_BENCHMARKS.len());
    let reps = cfg.error_reps().max(3);
    for b in ALL_BENCHMARKS {
        let workload = Workload::new(b, &ctx.catalog);
        let events = workload.top_event_ids(&ctx.catalog, 10);
        // The paper pools "the collected data for events of a program":
        // coverage per event series, averaged over events and runs.
        let mut acc = [(0.0, 0.0); 5];
        let mut count = 0usize;
        for rep in 0..reps {
            let run = ctx
                .pmu
                .simulate_mlpx(&workload, &events, rep as u32, cfg.seed);
            for (_, series) in run.record.iter() {
                let table = coverage_table(series.values())?;
                for (slot, (n, frac)) in acc.iter_mut().zip(table) {
                    *slot = (n, slot.1 + frac);
                }
                count += 1;
            }
        }
        for slot in &mut acc {
            slot.1 /= count as f64;
        }
        rows.push((b, acc));
    }
    Ok(Table1Result { rows })
}
