//! Fig. 11: top-10 event-pair interaction intensities per HiBench
//! benchmark.
//!
//! Paper findings: every benchmark has one or two dominant pairs;
//! branch-related events appear in 83.4 % of the 160 strongest pairs;
//! BRB–BMP is the top pair for most benchmarks.

use super::common::{analyze_benchmarks, ExpConfig};
use cm_events::EventCatalog;
use cm_sim::Benchmark;
use counterminer::{AnalysisReport, CmError};
use std::fmt;

/// One benchmark's top interaction pairs.
#[derive(Debug, Clone)]
pub struct InteractionRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// `(pair label "AAA-BBB", share %)`, descending.
    pub top10: Vec<(String, f64)>,
}

/// Interaction rankings for a suite.
#[derive(Debug, Clone)]
pub struct InteractionResult {
    /// Figure title.
    pub title: &'static str,
    /// One row per benchmark.
    pub rows: Vec<InteractionRow>,
}

impl InteractionResult {
    /// Fraction of listed pairs involving at least one branch-related
    /// event (the paper measures 83.4 % across both suites).
    pub fn branch_pair_share(&self, catalog: &EventCatalog) -> f64 {
        let mut branchy = 0usize;
        let mut total = 0usize;
        for row in &self.rows {
            for (label, _) in &row.top10 {
                total += 1;
                let involved = label.split('-').any(|a| {
                    catalog
                        .by_abbrev(a)
                        .map(|e| e.is_branch_related())
                        .unwrap_or(false)
                });
                if involved {
                    branchy += 1;
                }
            }
        }
        branchy as f64 / total as f64
    }

    /// Dominance of the top pair: its share over the second pair's.
    pub fn dominance(row: &InteractionRow) -> f64 {
        row.top10[0].1 / row.top10[1].1.max(1e-9)
    }
}

impl fmt::Display for InteractionResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        for row in &self.rows {
            write!(f, "{:<20}", row.benchmark.to_string())?;
            for (label, pct) in row.top10.iter().take(10) {
                write!(f, " {label}={pct:.1}%")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

pub(crate) fn reports_to_interaction_rows(
    reports: &[AnalysisReport],
    catalog: &EventCatalog,
) -> Vec<InteractionRow> {
    reports
        .iter()
        .map(|r| InteractionRow {
            benchmark: r.benchmark,
            top10: r
                .interactions
                .iter()
                .take(10)
                .map(|p| {
                    (
                        format!(
                            "{}-{}",
                            catalog.info(p.pair.0).abbrev(),
                            catalog.info(p.pair.1).abbrev()
                        ),
                        p.share,
                    )
                })
                .collect(),
        })
        .collect()
}

/// Runs the interaction pipeline on the eight HiBench benchmarks.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run(cfg: &ExpConfig) -> Result<InteractionResult, CmError> {
    let catalog = EventCatalog::haswell();
    let reports = analyze_benchmarks(cfg, &cm_sim::HIBENCH)?;
    Ok(InteractionResult {
        title: "Fig. 11 — top interaction pairs, HiBench",
        rows: reports_to_interaction_rows(&reports, &catalog),
    })
}
