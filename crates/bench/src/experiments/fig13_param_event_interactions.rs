//! Fig. 13: interaction intensity of (Spark parameter, event) pairs per
//! HiBench benchmark.
//!
//! Paper findings: each benchmark has one or two dominant
//! parameter–event pairs (tune those parameters first), and the dominant
//! pair varies across benchmarks. For sort the dominant pair is ORO–bbs.

use super::common::ExpConfig;
use cm_events::EventCatalog;
use cm_sim::{Benchmark, SparkParam, SparkStudy, HIBENCH};
use counterminer::case_study::rank_param_event_interactions;
use counterminer::CmError;
use std::fmt;

/// One benchmark's parameter–event interaction ranking.
#[derive(Debug, Clone)]
pub struct ParamEventRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// `(event abbrev, parameter abbrev, share %)`, descending.
    pub ranking: Vec<(String, String, f64)>,
}

/// The Fig. 13 result across HiBench.
#[derive(Debug, Clone)]
pub struct Fig13Result {
    /// One row per benchmark.
    pub rows: Vec<ParamEventRow>,
}

impl Fig13Result {
    /// The dominant `(event, parameter)` pair of one benchmark.
    pub fn dominant(&self, benchmark: Benchmark) -> Option<(&str, &str)> {
        self.rows
            .iter()
            .find(|r| r.benchmark == benchmark)
            .and_then(|r| r.ranking.first())
            .map(|(e, p, _)| (e.as_str(), p.as_str()))
    }
}

impl fmt::Display for Fig13Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 13 — (Spark parameter, event) interaction shares, HiBench"
        )?;
        for row in &self.rows {
            write!(f, "{:<14}", row.benchmark.to_string())?;
            for (event, param, share) in row.ranking.iter().take(6) {
                write!(f, " {event}-{param}={share:.1}%")?;
            }
            writeln!(f)?;
        }
        writeln!(f, "paper: for sort the dominant pair is ORO-bbs")
    }
}

/// Runs the parameter–event interaction ranking for every HiBench
/// benchmark.
///
/// # Errors
///
/// Propagates regression failures.
pub fn run(cfg: &ExpConfig) -> Result<Fig13Result, CmError> {
    let catalog = EventCatalog::haswell();
    let repeats = match cfg.scale {
        super::Scale::Full => 8,
        super::Scale::Quick => 3,
    };
    let mut rows = Vec::with_capacity(HIBENCH.len());
    for b in HIBENCH {
        let study = SparkStudy::new(b, &catalog);
        let ranked = rank_param_event_interactions(&study, &catalog, repeats, cfg.seed)?;
        rows.push(ParamEventRow {
            benchmark: b,
            ranking: ranked
                .into_iter()
                .map(|(p, event_abbrev, share)| {
                    (event_abbrev.to_string(), p.abbrev().to_string(), share)
                })
                .collect(),
        });
    }
    Ok(Fig13Result { rows })
}

/// The parameter whose abbreviation appears in the dominant pair of a
/// benchmark, if any.
pub fn dominant_param(result: &Fig13Result, benchmark: Benchmark) -> Option<SparkParam> {
    let (_, p) = result.dominant(benchmark)?;
    cm_sim::ALL_PARAMS.iter().copied().find(|x| x.abbrev() == p)
}
