//! Fig. 1: MLPX measurement error of `ICACHE.MISSES` per benchmark
//! (10 events multiplexed on 4 counters).
//!
//! Paper: min 8.8 %, max 43.3 %, average 28.3 %.

use super::common::{event_error, pct, Ctx, ExpConfig};
use cm_events::abbrev;
use cm_sim::{Benchmark, ALL_BENCHMARKS};
use counterminer::CmError;
use std::fmt;

/// Per-benchmark raw MLPX error of `ICACHE.MISSES`.
#[derive(Debug, Clone)]
pub struct Fig01Result {
    /// `(benchmark, error %)` per benchmark, figure order.
    pub errors: Vec<(Benchmark, f64)>,
}

impl Fig01Result {
    /// Average error across benchmarks.
    pub fn average(&self) -> f64 {
        self.errors.iter().map(|&(_, e)| e).sum::<f64>() / self.errors.len() as f64
    }

    /// Minimum per-benchmark error.
    pub fn min(&self) -> f64 {
        self.errors
            .iter()
            .map(|&(_, e)| e)
            .fold(f64::INFINITY, f64::min)
    }

    /// Maximum per-benchmark error.
    pub fn max(&self) -> f64 {
        self.errors.iter().map(|&(_, e)| e).fold(0.0, f64::max)
    }
}

impl fmt::Display for Fig01Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 1 — MLPX error of ICACHE.MISSES, 10 events on 4 counters"
        )?;
        writeln!(f, "{:<22} {:>8}", "benchmark", "error")?;
        for &(b, e) in &self.errors {
            writeln!(f, "{:<22} {}", format!("{} ({})", b.abbrev(), b), pct(e))?;
        }
        writeln!(f, "{:<22} {}", "AVG", pct(self.average()))?;
        writeln!(
            f,
            "paper: min 8.8%  max 43.3%  avg 28.3%   (measured: min {:.1}%  max {:.1}%  avg {:.1}%)",
            self.min(),
            self.max(),
            self.average()
        )
    }
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run(cfg: &ExpConfig) -> Result<Fig01Result, CmError> {
    let ctx = Ctx::new();
    let icm = ctx.catalog.by_abbrev(abbrev::ICM).expect("ICM").id();
    let mut errors = Vec::with_capacity(ALL_BENCHMARKS.len());
    for b in ALL_BENCHMARKS {
        let (raw, _) = event_error(&ctx, b, icm, 10, cfg.error_reps(), cfg.seed)?;
        errors.push((b, raw));
    }
    Ok(Fig01Result { errors })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_sim::Benchmark;

    fn synthetic() -> Fig01Result {
        Fig01Result {
            errors: vec![
                (Benchmark::Wordcount, 10.0),
                (Benchmark::Sort, 30.0),
                (Benchmark::WebServing, 20.0),
            ],
        }
    }

    #[test]
    fn stats_are_correct() {
        let r = synthetic();
        assert_eq!(r.min(), 10.0);
        assert_eq!(r.max(), 30.0);
        assert_eq!(r.average(), 20.0);
    }

    #[test]
    fn display_contains_every_benchmark_and_the_average() {
        let text = synthetic().to_string();
        assert!(text.contains("WDC"));
        assert!(text.contains("SOT"));
        assert!(text.contains("AVG"));
        assert!(text.contains("28.3%")); // the paper reference line
    }
}
