//! Extension: adaptive event scheduling (Lim et al., the paper's reference 34)
//! vs. round-robin, with and without CounterMiner cleaning.
//!
//! The paper positions its cleaner as complementary to smarter
//! *during-measurement* scheduling. This experiment measures the DTW
//! error of `ICACHE.MISSES` under both schedulers and shows that
//! cleaning composes with either — scheduling reduces how much
//! information is lost, cleaning repairs what still goes wrong.

use super::common::{pct, Ctx, ExpConfig};
use cm_events::abbrev;
use cm_sim::{PmuConfig, Scheduling, Workload, HIBENCH};
use counterminer::error_metrics::mlpx_error;
use counterminer::{CmError, DataCleaner};
use std::fmt;

/// Mean error per (scheduler, cleaning) combination.
#[derive(Debug, Clone)]
pub struct SchedulingResult {
    /// Round-robin, raw.
    pub round_robin_raw: f64,
    /// Adaptive, raw.
    pub adaptive_raw: f64,
    /// Round-robin + cleaning.
    pub round_robin_cleaned: f64,
    /// Adaptive + cleaning.
    pub adaptive_cleaned: f64,
}

impl fmt::Display for SchedulingResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Extension — adaptive scheduling (Lim et al.) vs. round-robin, 16 events"
        )?;
        writeln!(f, "{:<22} {:>8} {:>10}", "", "raw", "cleaned")?;
        writeln!(
            f,
            "{:<22} {} {}",
            "round-robin",
            pct(self.round_robin_raw),
            pct(self.round_robin_cleaned)
        )?;
        writeln!(
            f,
            "{:<22} {} {}",
            "adaptive",
            pct(self.adaptive_raw),
            pct(self.adaptive_cleaned)
        )?;
        writeln!(
            f,
            "cleaning composes with either scheduler (the paper's complementarity claim)"
        )
    }
}

fn mean_error(
    ctx: &Ctx,
    cfg: &ExpConfig,
    scheduling: Scheduling,
    clean: bool,
) -> Result<f64, CmError> {
    let pmu = PmuConfig {
        scheduling,
        ..ctx.pmu
    };
    let icm = ctx.catalog.by_abbrev(abbrev::ICM).expect("ICM").id();
    let cleaner = DataCleaner::default();
    let mut total = 0.0;
    let mut count = 0usize;
    for b in HIBENCH {
        let workload = Workload::new(b, &ctx.catalog);
        let mut events = workload.top_event_ids(&ctx.catalog, 16);
        events.insert(icm);
        for rep in 0..cfg.error_reps() {
            let seed = cfg.seed.wrapping_add(rep as u64 * 31_337);
            let ocoe1 = ctx.pmu.simulate_ocoe(&workload, &events, 0, seed);
            let ocoe2 = ctx.pmu.simulate_ocoe(&workload, &events, 1, seed);
            let mlpx = pmu.simulate_mlpx(&workload, &events, 2, seed);
            let s1 = ocoe1.record.series(icm).expect("measured");
            let s2 = ocoe2.record.series(icm).expect("measured");
            let sm = mlpx.record.series(icm).expect("measured");
            let candidate = if clean {
                cleaner.clean_series(sm)?.0
            } else {
                sm.clone()
            };
            total += mlpx_error(s1, s2, &candidate)?;
            count += 1;
        }
    }
    Ok(total / count as f64)
}

/// Runs the comparison.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run(cfg: &ExpConfig) -> Result<SchedulingResult, CmError> {
    let ctx = Ctx::new();
    Ok(SchedulingResult {
        round_robin_raw: mean_error(&ctx, cfg, Scheduling::RoundRobin, false)?,
        adaptive_raw: mean_error(&ctx, cfg, Scheduling::Adaptive, false)?,
        round_robin_cleaned: mean_error(&ctx, cfg, Scheduling::RoundRobin, true)?,
        adaptive_cleaned: mean_error(&ctx, cfg, Scheduling::Adaptive, true)?,
    })
}
