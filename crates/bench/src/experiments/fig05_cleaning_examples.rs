//! Fig. 5: the Fig. 2 examples after data cleaning — outliers replaced,
//! missing values filled.

use super::common::{series_digest, ExpConfig};
use super::fig02_dirty_examples::{self, Fig02Result};
use cm_events::TimeSeries;
use counterminer::{CleanReport, CmError, DataCleaner};
use std::fmt;

/// The cleaned example series with their cleaning reports.
#[derive(Debug, Clone)]
pub struct Fig05Result {
    /// The dirty inputs (from the Fig. 2 experiment).
    pub dirty: Fig02Result,
    /// Cleaned `IDQ.DSB_UOPS` MLPX series.
    pub idu_cleaned: TimeSeries,
    /// Cleaning report for the outlier example.
    pub idu_report: CleanReport,
    /// Cleaned `ICACHE.MISSES` MLPX series.
    pub icm_cleaned: TimeSeries,
    /// Cleaning report for the missing-value example.
    pub icm_report: CleanReport,
}

impl Fig05Result {
    /// How much closer the cleaned outlier-example maximum is to the
    /// OCOE maximum (1.0 would be exact).
    pub fn outlier_ratio_after(&self) -> f64 {
        self.idu_cleaned.max().unwrap_or(0.0) / self.dirty.idu_ocoe.max().unwrap_or(1.0)
    }
}

impl fmt::Display for Fig05Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 5 — the Fig. 2 examples after cleaning")?;
        writeln!(f, "(a) IDQ.DSB_UOPS")?;
        writeln!(f, "  MLPX     : {}", series_digest(&self.dirty.idu_mlpx))?;
        writeln!(f, "  MLPX-CLN : {}", series_digest(&self.idu_cleaned))?;
        writeln!(
            f,
            "  outliers replaced = {}; max is now {:.1}x the OCOE max (was {:.1}x)",
            self.idu_report.outliers_replaced,
            self.outlier_ratio_after(),
            self.dirty.outlier_ratio()
        )?;
        writeln!(f, "(b) ICACHE.MISSES")?;
        writeln!(f, "  MLPX     : {}", series_digest(&self.dirty.icm_mlpx))?;
        writeln!(f, "  MLPX-CLN : {}", series_digest(&self.icm_cleaned))?;
        writeln!(
            f,
            "  missing filled = {}; remaining zeros = {}",
            self.icm_report.missing_filled,
            self.icm_cleaned.zero_count()
        )
    }
}

/// Cleans the Fig. 2 example series.
///
/// # Errors
///
/// Propagates cleaning failures.
pub fn run(cfg: &ExpConfig) -> Result<Fig05Result, CmError> {
    let dirty = fig02_dirty_examples::run(cfg)?;
    let cleaner = DataCleaner::default();
    let (idu_cleaned, idu_report) = cleaner.clean_series(&dirty.idu_mlpx)?;
    let (icm_cleaned, icm_report) = cleaner.clean_series(&dirty.icm_mlpx)?;
    Ok(Fig05Result {
        dirty,
        idu_cleaned,
        idu_report,
        icm_cleaned,
        icm_report,
    })
}
