//! Experiment harness for the CounterMiner reproduction.
//!
//! One module per table/figure of the paper's evaluation (Section V).
//! Every module exposes `run(&ExpConfig) -> …Result` returning a
//! structured result that implements `Display`, printing the same rows
//! or series the paper reports. Thin binaries under `src/bin/` wrap each
//! module; `all_experiments` runs everything and writes
//! `EXPERIMENTS-results.txt`.
//!
//! Results never match the paper's absolute numbers (our substrate is a
//! simulator, not a Xeon cluster); the *shape* — who wins, by what
//! factor, where the knees fall — is what each experiment checks.
//! `EXPERIMENTS.md` records paper-vs-measured values.
//!
//! # Examples
//!
//! ```
//! use cm_bench::{ExpConfig, Scale};
//!
//! // Tests and smoke runs downscale every experiment the same way.
//! let config = ExpConfig {
//!     scale: Scale::Quick,
//!     ..ExpConfig::default()
//! };
//! assert_eq!(config.seed, 2018);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod experiments;

pub use experiments::{ExpConfig, Scale};
