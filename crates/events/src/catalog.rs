use crate::abbrev;
use crate::id::EventId;
use std::collections::HashMap;
use std::fmt;

/// Value-distribution family of an event, as determined by the paper's
/// Anderson–Darling testing (Section III-B).
///
/// On the paper's Haswell-E machines, 100 of the 229 events had
/// Gaussian-distributed per-interval values; the other 129 followed
/// long-tail distributions best fit by the generalized extreme value
/// (GEV) family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TailFamily {
    /// Values follow a Gaussian (normal) distribution.
    Gaussian,
    /// Values follow a long-tail distribution (GEV fits best).
    LongTail,
}

impl fmt::Display for TailFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TailFamily::Gaussian => f.write_str("gaussian"),
            TailFamily::LongTail => f.write_str("long-tail"),
        }
    }
}

/// Coarse microarchitectural category of an event.
///
/// The paper's findings are phrased in terms of these categories ("branch
/// related events interact the most strongly", "common important events
/// related to branches, TLBs, and remote memory/cache operations"), so the
/// catalog tags every event with one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Branch execution, retirement, and prediction events.
    Branch,
    /// Instruction/data/second-level TLB and page-walk events.
    Tlb,
    /// L1/L2/LLC cache events.
    Cache,
    /// Memory access, offcore, and remote-socket events.
    Memory,
    /// Instruction fetch and decode (front-end) events.
    Frontend,
    /// Execution and retirement (back-end) events.
    Backend,
    /// Everything else (transactional memory, assists, ring transitions…).
    Other,
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EventKind::Branch => "branch",
            EventKind::Tlb => "tlb",
            EventKind::Cache => "cache",
            EventKind::Memory => "memory",
            EventKind::Frontend => "frontend",
            EventKind::Backend => "backend",
            EventKind::Other => "other",
        };
        f.write_str(s)
    }
}

/// Static metadata for one catalog event.
#[derive(Debug, Clone)]
pub struct EventInfo {
    id: EventId,
    abbrev: String,
    name: String,
    description: String,
    kind: EventKind,
    family: TailFamily,
    base_scale: f64,
}

impl EventInfo {
    /// The event's dense catalog id.
    pub fn id(&self) -> EventId {
        self.id
    }

    /// Three-character abbreviation (Table III style).
    pub fn abbrev(&self) -> &str {
        &self.abbrev
    }

    /// Full `perf`-style event name, e.g. `BR_INST_RETIRED.ALL_BRANCHES`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Human-readable description.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Microarchitectural category.
    pub fn kind(&self) -> EventKind {
        self.kind
    }

    /// Value-distribution family.
    pub fn family(&self) -> TailFamily {
        self.family
    }

    /// Typical per-interval count magnitude, used by the workload
    /// simulator to scale event processes.
    pub fn base_scale(&self) -> f64 {
        self.base_scale
    }

    /// Returns `true` for branch-related events (used for the paper's
    /// interaction finding).
    pub fn is_branch_related(&self) -> bool {
        self.kind == EventKind::Branch
    }

    /// Returns `true` for L2-cache events (used for the co-location
    /// finding of Fig. 16).
    pub fn is_l2_related(&self) -> bool {
        self.name.starts_with("L2_")
    }

    /// Returns `true` for remote-socket memory or cache events.
    pub fn is_remote(&self) -> bool {
        self.name.contains("REMOTE")
    }
}

/// The full event catalog of the modeled processor.
///
/// `EventCatalog::haswell()` builds the 229-event catalog modeled on the
/// Intel Xeon E5-2630 v3 (Haswell-E) machines of the paper.
///
/// # Examples
///
/// ```
/// use cm_events::{EventCatalog, TailFamily};
///
/// let catalog = EventCatalog::haswell();
/// let gaussian = catalog
///     .iter()
///     .filter(|e| e.family() == TailFamily::Gaussian)
///     .count();
/// assert_eq!(gaussian, 100);
/// assert_eq!(catalog.len() - gaussian, 129);
/// ```
#[derive(Debug, Clone)]
pub struct EventCatalog {
    events: Vec<EventInfo>,
    by_abbrev: HashMap<String, EventId>,
    by_name: HashMap<String, EventId>,
}

/// Number of events in the Haswell-E model catalog.
pub const HASWELL_EVENT_COUNT: usize = 229;
/// Number of Gaussian-distributed events in the Haswell-E model catalog.
pub const HASWELL_GAUSSIAN_COUNT: usize = 100;

struct RawEvent {
    abbrev: &'static str,
    name: String,
    description: String,
    kind: EventKind,
    family: TailFamily,
    base_scale: f64,
}

impl EventCatalog {
    /// Builds the 229-event Haswell-E model catalog.
    pub fn haswell() -> Self {
        let mut raw = named_events();
        raw.extend(generated_events());
        assert!(
            raw.len() >= HASWELL_EVENT_COUNT,
            "generator produced too few events: {}",
            raw.len()
        );
        raw.truncate(HASWELL_EVENT_COUNT);
        calibrate_families(&mut raw);
        Self::from_raw(raw)
    }

    fn from_raw(raw: Vec<RawEvent>) -> Self {
        let mut events = Vec::with_capacity(raw.len());
        let mut by_abbrev = HashMap::with_capacity(raw.len());
        let mut by_name = HashMap::with_capacity(raw.len());
        let mut auto = 0usize;
        for (i, r) in raw.into_iter().enumerate() {
            let id = EventId::new(i);
            let abbrev = if r.abbrev.is_empty() {
                let code = auto_abbrev(auto);
                auto += 1;
                code
            } else {
                r.abbrev.to_string()
            };
            let dup = by_abbrev.insert(abbrev.clone(), id);
            assert!(dup.is_none(), "duplicate abbreviation {abbrev}");
            let dup = by_name.insert(r.name.clone(), id);
            assert!(dup.is_none(), "duplicate event name {}", r.name);
            events.push(EventInfo {
                id,
                abbrev,
                name: r.name,
                description: r.description,
                kind: r.kind,
                family: r.family,
                base_scale: r.base_scale,
            });
        }
        EventCatalog {
            events,
            by_abbrev,
            by_name,
        }
    }

    /// Number of events in the catalog.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if the catalog is empty (never true for built-in
    /// catalogs).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Looks up an event by id.
    ///
    /// Returns `None` when the id is out of range for this catalog.
    pub fn get(&self, id: EventId) -> Option<&EventInfo> {
        self.events.get(id.index())
    }

    /// Looks up an event by id, panicking on out-of-range ids.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this catalog.
    pub fn info(&self, id: EventId) -> &EventInfo {
        &self.events[id.index()]
    }

    /// Looks up an event by its Table III abbreviation.
    pub fn by_abbrev(&self, abbrev: &str) -> Option<&EventInfo> {
        self.by_abbrev.get(abbrev).map(|&id| self.info(id))
    }

    /// Looks up an event by its full `perf`-style name.
    pub fn by_name(&self, name: &str) -> Option<&EventInfo> {
        self.by_name.get(name).map(|&id| self.info(id))
    }

    /// Iterates over all events in id order.
    pub fn iter(&self) -> impl Iterator<Item = &EventInfo> {
        self.events.iter()
    }
}

impl<'a> IntoIterator for &'a EventCatalog {
    type Item = &'a EventInfo;
    type IntoIter = std::slice::Iter<'a, EventInfo>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

fn auto_abbrev(n: usize) -> String {
    // Q00..Q99, V00..V99, ... : prefixes chosen to avoid collisions with
    // the named Table III abbreviations.
    const PREFIXES: &[char] = &['Q', 'V', 'X', 'Y', 'Z', 'J', 'K'];
    let prefix = PREFIXES[n / 100 % PREFIXES.len()];
    format!("{prefix}{:02}", n % 100)
}

fn scale_for(kind: EventKind, family: TailFamily) -> f64 {
    match (kind, family) {
        (EventKind::Branch, TailFamily::Gaussian) => 2.0e7,
        (EventKind::Branch, TailFamily::LongTail) => 4.0e5,
        (EventKind::Tlb, _) => 8.0e3,
        (EventKind::Cache, TailFamily::Gaussian) => 5.0e5,
        (EventKind::Cache, TailFamily::LongTail) => 3.0e4,
        (EventKind::Memory, TailFamily::Gaussian) => 2.0e6,
        (EventKind::Memory, TailFamily::LongTail) => 1.0e4,
        (EventKind::Frontend, _) => 1.0e7,
        (EventKind::Backend, TailFamily::Gaussian) => 5.0e7,
        (EventKind::Backend, TailFamily::LongTail) => 2.0e6,
        (EventKind::Other, _) => 2.0e3,
    }
}

fn named(
    abbrev: &'static str,
    name: &str,
    description: &str,
    kind: EventKind,
    family: TailFamily,
) -> RawEvent {
    RawEvent {
        abbrev,
        name: name.to_string(),
        description: description.to_string(),
        kind,
        family,
        base_scale: scale_for(kind, family),
    }
}

fn named_events() -> Vec<RawEvent> {
    use EventKind::*;
    use TailFamily::*;
    vec![
        named(
            abbrev::ISF,
            "ILD_STALL.IQ_FULL",
            "stall cycles due to instruction queue full",
            Frontend,
            LongTail,
        ),
        named(
            abbrev::BRE,
            "BR_INST_EXEC.ALL_BRANCHES",
            "branch instructions executed",
            Branch,
            Gaussian,
        ),
        named(
            abbrev::BRB,
            "BR_INST_RETIRED.ALL_BRANCHES",
            "successfully retired branch instructions",
            Branch,
            Gaussian,
        ),
        named(
            abbrev::BMP,
            "BR_MISP_RETIRED.ALL_BRANCHES",
            "mispredicted but finally retired branch instructions",
            Branch,
            LongTail,
        ),
        named(
            abbrev::BRC,
            "BR_INST_RETIRED.CONDITIONAL",
            "retired conditional branch instructions",
            Branch,
            Gaussian,
        ),
        named(
            abbrev::BNT,
            "BR_INST_RETIRED.NOT_TAKEN",
            "retired not-taken branch instructions",
            Branch,
            Gaussian,
        ),
        named(
            abbrev::BAA,
            "BACLEARS.ANY",
            "branch address clears (front-end resteers)",
            Branch,
            LongTail,
        ),
        named(
            abbrev::ORA,
            "OFFCORE_RESPONSE.ALL_READS.LLC_MISS.REMOTE_DRAM",
            "offcore reads served by remote DRAM",
            Memory,
            LongTail,
        ),
        named(
            abbrev::ORO,
            "OFFCORE_RESPONSE.ALL_REQUESTS.LLC_MISS.REMOTE_HIT_FORWARD",
            "offcore requests served by a remote cache",
            Memory,
            LongTail,
        ),
        named(
            abbrev::URA,
            "UOPS_RETIRED.ALL",
            "uops retired, all",
            Backend,
            Gaussian,
        ),
        named(
            abbrev::URS,
            "UOPS_RETIRED.RETIRE_SLOTS",
            "retirement slots used",
            Backend,
            Gaussian,
        ),
        named(
            abbrev::IPD,
            "INST_RETIRED.PREC_DIST",
            "instructions retired (precise distribution)",
            Backend,
            Gaussian,
        ),
        named(
            abbrev::MSL,
            "MEM_UOPS_RETIRED.SPLIT_LOADS",
            "retired load uops split across cache lines",
            Memory,
            LongTail,
        ),
        named(
            abbrev::MST,
            "MEM_UOPS_RETIRED.SPLIT_STORES",
            "retired store uops split across cache lines",
            Memory,
            LongTail,
        ),
        named(
            abbrev::MLL,
            "MEM_LOAD_UOPS_RETIRED.LLC_MISS",
            "retired load uops missing the last-level cache",
            Memory,
            LongTail,
        ),
        named(
            abbrev::MUL,
            "MEM_UOPS_RETIRED.ALL_LOADS",
            "retired load uops, all",
            Memory,
            Gaussian,
        ),
        named(
            abbrev::MMR,
            "MEM_LOAD_UOPS_L3_MISS_RETIRED.REMOTE_DRAM",
            "L3-miss loads served by remote DRAM",
            Memory,
            LongTail,
        ),
        named(
            abbrev::LMH,
            "MEM_LOAD_UOPS_L3_HIT_RETIRED.XSNP_HIT",
            "L3-hit loads with cross-core snoop hit",
            Cache,
            LongTail,
        ),
        named(
            abbrev::LHN,
            "MEM_LOAD_UOPS_L3_HIT_RETIRED.XSNP_NONE",
            "L3-hit loads without snoop",
            Cache,
            Gaussian,
        ),
        named(
            abbrev::LRC,
            "MEM_LOAD_UOPS_L3_MISS_RETIRED.REMOTE_HITM",
            "L3-miss loads hitting modified data in a remote cache",
            Memory,
            LongTail,
        ),
        named(
            abbrev::LRA,
            "MEM_LOAD_UOPS_L3_MISS_RETIRED.REMOTE_FWD",
            "L3-miss loads forwarded from a remote cache",
            Memory,
            LongTail,
        ),
        named(
            abbrev::ITM,
            "ITLB_MISSES.MISS_CAUSES_A_WALK",
            "instruction TLB misses causing a page walk",
            Tlb,
            LongTail,
        ),
        named(
            abbrev::IMT,
            "ITLB_MISSES.WALK_COMPLETED",
            "instruction TLB page walks completed",
            Tlb,
            LongTail,
        ),
        named(
            abbrev::DSP,
            "DTLB_STORE_MISSES.MISS_CAUSES_A_WALK",
            "data TLB store misses causing a page walk",
            Tlb,
            LongTail,
        ),
        named(
            abbrev::DSH,
            "DTLB_STORE_MISSES.STLB_HIT",
            "data TLB store misses hitting the second-level TLB",
            Tlb,
            LongTail,
        ),
        named(
            abbrev::IDU,
            "IDQ.DSB_UOPS",
            "uops delivered to IDQ from the decode stream buffer",
            Frontend,
            Gaussian,
        ),
        named(
            abbrev::IM4,
            "IDQ.ALL_MITE_CYCLES_4_UOPS",
            "cycles MITE delivered four uops",
            Frontend,
            Gaussian,
        ),
        named(
            abbrev::IMC,
            "IDQ.MITE_CYCLES",
            "cycles MITE delivered uops to the IDQ",
            Frontend,
            Gaussian,
        ),
        named(
            abbrev::I4U,
            "IDQ.ALL_DSB_CYCLES_4_UOPS",
            "cycles DSB delivered four uops",
            Frontend,
            Gaussian,
        ),
        named(
            abbrev::ICM,
            "ICACHE.MISSES",
            "instruction cache misses per 1K instructions",
            Cache,
            LongTail,
        ),
        named(
            abbrev::CAC,
            "CYCLE_ACTIVITY.CYCLES_L1D_PENDING",
            "cycles with a pending L1D miss",
            Backend,
            LongTail,
        ),
        named(
            abbrev::OTS,
            "OTHER_ASSISTS.ANY",
            "hardware assists of any kind",
            Other,
            LongTail,
        ),
        named(
            abbrev::TFA,
            "TLB_FLUSH.STLB_ANY",
            "second-level TLB flushes",
            Tlb,
            LongTail,
        ),
        named(
            abbrev::PI3,
            "PAGE_WALKER_LOADS.ITLB_L3",
            "instruction-TLB page-walker loads hitting L3",
            Tlb,
            LongTail,
        ),
        named(
            abbrev::MIE,
            "MACHINE_CLEARS.MEMORY_ORDERING",
            "machine clears due to memory ordering",
            Backend,
            LongTail,
        ),
        named(
            abbrev::MCO,
            "MACHINE_CLEARS.COUNT",
            "machine clears, total",
            Backend,
            LongTail,
        ),
        named(
            abbrev::CRX,
            "OFFCORE_REQUESTS_BUFFER.SQ_FULL",
            "cycles the offcore super queue was full",
            Memory,
            LongTail,
        ),
        named(
            abbrev::ISL,
            "ILD_STALL.LCP",
            "instruction-length-decoder stalls on length-changing prefixes",
            Frontend,
            LongTail,
        ),
        named(
            abbrev::L2H,
            "L2_RQSTS.DEMAND_DATA_RD_HIT",
            "L2 demand data read hits",
            Cache,
            Gaussian,
        ),
        named(
            abbrev::L2R,
            "L2_RQSTS.ALL_DEMAND_DATA_RD",
            "L2 demand data reads, total",
            Cache,
            Gaussian,
        ),
        named(
            abbrev::L2C,
            "L2_RQSTS.CODE_RD_HIT",
            "L2 code read hits",
            Cache,
            Gaussian,
        ),
        named(
            abbrev::L2A,
            "L2_RQSTS.ALL_CODE_RD",
            "L2 code reads, total",
            Cache,
            Gaussian,
        ),
        named(
            abbrev::L2M,
            "L2_RQSTS.DEMAND_DATA_RD_MISS",
            "L2 demand data read misses",
            Cache,
            LongTail,
        ),
        named(
            abbrev::L2S,
            "L2_RQSTS.ALL_RFO",
            "L2 store (RFO) requests",
            Cache,
            Gaussian,
        ),
    ]
}

fn generated_events() -> Vec<RawEvent> {
    let mut out = Vec::new();
    let mut push = |name: String, kind: EventKind, desc: String| {
        let family = heuristic_family(&name);
        out.push(RawEvent {
            abbrev: "",
            name,
            description: desc,
            kind,
            family,
            base_scale: scale_for(kind, family),
        });
    };

    let groups: &[(&str, EventKind, &[&str])] = &[
        (
            "UOPS_DISPATCHED_PORT",
            EventKind::Backend,
            &[
                "PORT_0", "PORT_1", "PORT_2", "PORT_3", "PORT_4", "PORT_5", "PORT_6", "PORT_7",
            ],
        ),
        (
            "UOPS_EXECUTED",
            EventKind::Backend,
            &[
                "CORE",
                "THREAD",
                "CYCLES_GE_1_UOP_EXEC",
                "CYCLES_GE_2_UOPS_EXEC",
                "CYCLES_GE_3_UOPS_EXEC",
                "CYCLES_GE_4_UOPS_EXEC",
            ],
        ),
        (
            "UOPS_ISSUED",
            EventKind::Backend,
            &[
                "ANY",
                "FLAGS_MERGE",
                "SLOW_LEA",
                "SINGLE_MUL",
                "STALL_CYCLES",
                "CORE_STALL_CYCLES",
            ],
        ),
        (
            "CYCLE_ACTIVITY",
            EventKind::Backend,
            &[
                "STALLS_L1D_PENDING",
                "STALLS_L2_PENDING",
                "STALLS_LDM_PENDING",
                "CYCLES_L2_PENDING",
                "CYCLES_LDM_PENDING",
                "CYCLES_NO_EXECUTE",
            ],
        ),
        (
            "RESOURCE_STALLS",
            EventKind::Backend,
            &["ANY", "RS", "SB", "ROB"],
        ),
        (
            "LD_BLOCKS",
            EventKind::Memory,
            &["STORE_FORWARD", "NO_SR", "PARTIAL_ADDRESS_ALIAS"],
        ),
        (
            "DTLB_LOAD_MISSES",
            EventKind::Tlb,
            &[
                "MISS_CAUSES_A_WALK",
                "WALK_COMPLETED",
                "WALK_COMPLETED_4K",
                "WALK_COMPLETED_2M_4M",
                "WALK_DURATION",
                "STLB_HIT",
                "STLB_HIT_4K",
                "STLB_HIT_2M",
                "PDE_CACHE_MISS",
            ],
        ),
        (
            "DTLB_STORE_MISSES",
            EventKind::Tlb,
            &[
                "WALK_COMPLETED",
                "WALK_COMPLETED_4K",
                "WALK_DURATION",
                "STLB_HIT_4K",
                "PDE_CACHE_MISS",
            ],
        ),
        (
            "ITLB_MISSES",
            EventKind::Tlb,
            &[
                "WALK_COMPLETED_4K",
                "WALK_COMPLETED_2M_4M",
                "WALK_DURATION",
                "STLB_HIT",
            ],
        ),
        (
            "PAGE_WALKER_LOADS",
            EventKind::Tlb,
            &[
                "DTLB_L1",
                "DTLB_L2",
                "DTLB_L3",
                "DTLB_MEMORY",
                "ITLB_L1",
                "ITLB_L2",
                "ITLB_MEMORY",
                "EPT_DTLB_L1",
            ],
        ),
        (
            "L2_RQSTS",
            EventKind::Cache,
            &[
                "RFO_HIT",
                "RFO_MISS",
                "CODE_RD_MISS",
                "ALL_PF",
                "L2_PF_HIT",
                "L2_PF_MISS",
                "MISS",
                "REFERENCES",
            ],
        ),
        (
            "L2_TRANS",
            EventKind::Cache,
            &[
                "DEMAND_DATA_RD",
                "RFO",
                "CODE_RD",
                "ALL_PF",
                "L1D_WB",
                "L2_FILL",
                "L2_WB",
                "ALL_REQUESTS",
            ],
        ),
        ("L2_LINES_IN", EventKind::Cache, &["I", "S", "E", "ALL"]),
        (
            "L2_LINES_OUT",
            EventKind::Cache,
            &["DEMAND_CLEAN", "DEMAND_DIRTY"],
        ),
        (
            "L1D_PEND_MISS",
            EventKind::Cache,
            &["PENDING", "REQUEST_FB_FULL"],
        ),
        ("L1D", EventKind::Cache, &["REPLACEMENT"]),
        (
            "LONGEST_LAT_CACHE",
            EventKind::Cache,
            &["MISS", "REFERENCE"],
        ),
        (
            "MEM_LOAD_UOPS_RETIRED",
            EventKind::Memory,
            &[
                "L1_HIT", "L2_HIT", "L3_HIT", "L1_MISS", "L2_MISS", "L3_MISS", "HIT_LFB",
            ],
        ),
        (
            "MEM_UOPS_RETIRED",
            EventKind::Memory,
            &[
                "ALL_STORES",
                "STLB_MISS_LOADS",
                "STLB_MISS_STORES",
                "LOCK_LOADS",
            ],
        ),
        (
            "MEM_LOAD_UOPS_L3_HIT_RETIRED",
            EventKind::Cache,
            &["XSNP_MISS", "XSNP_HITM"],
        ),
        (
            "MEM_LOAD_UOPS_L3_MISS_RETIRED",
            EventKind::Memory,
            &["LOCAL_DRAM"],
        ),
        (
            "OFFCORE_REQUESTS",
            EventKind::Memory,
            &[
                "DEMAND_DATA_RD",
                "DEMAND_CODE_RD",
                "DEMAND_RFO",
                "ALL_DATA_RD",
            ],
        ),
        (
            "OFFCORE_REQUESTS_OUTSTANDING",
            EventKind::Memory,
            &[
                "DEMAND_DATA_RD",
                "DEMAND_CODE_RD",
                "DEMAND_RFO",
                "ALL_DATA_RD",
                "CYCLES_WITH_DEMAND_DATA_RD",
            ],
        ),
        (
            "BR_INST_EXEC",
            EventKind::Branch,
            &[
                "TAKEN_CONDITIONAL",
                "TAKEN_DIRECT_JUMP",
                "TAKEN_INDIRECT_JUMP_NON_CALL_RET",
                "TAKEN_INDIRECT_NEAR_RETURN",
                "TAKEN_DIRECT_NEAR_CALL",
                "TAKEN_INDIRECT_NEAR_CALL",
                "ALL_CONDITIONAL",
                "ALL_DIRECT_JMP",
            ],
        ),
        (
            "BR_MISP_EXEC",
            EventKind::Branch,
            &[
                "TAKEN_CONDITIONAL",
                "TAKEN_INDIRECT_JUMP_NON_CALL_RET",
                "ALL_CONDITIONAL",
                "ALL_INDIRECT_JUMP_NON_CALL_RET",
                "TAKEN_RETURN_NEAR",
                "ALL_BRANCHES",
            ],
        ),
        (
            "BR_INST_RETIRED",
            EventKind::Branch,
            &["NEAR_CALL", "NEAR_RETURN", "NEAR_TAKEN", "FAR_BRANCH"],
        ),
        (
            "BR_MISP_RETIRED",
            EventKind::Branch,
            &["CONDITIONAL", "NEAR_TAKEN", "ALL_BRANCHES_PEBS"],
        ),
        (
            "INT_MISC",
            EventKind::Backend,
            &["RECOVERY_CYCLES", "RAT_STALL_CYCLES"],
        ),
        (
            "IDQ",
            EventKind::Frontend,
            &[
                "MITE_UOPS",
                "MS_UOPS",
                "MS_SWITCHES",
                "MS_CYCLES",
                "ALL_DSB_CYCLES_ANY_UOPS",
                "EMPTY",
                "MITE_ALL_UOPS",
                "DSB_CYCLES",
            ],
        ),
        (
            "ICACHE",
            EventKind::Cache,
            &["HIT", "IFETCH_STALL", "IFDATA_STALL"],
        ),
        (
            "DSB2MITE_SWITCHES",
            EventKind::Frontend,
            &["COUNT", "PENALTY_CYCLES"],
        ),
        (
            "MOVE_ELIMINATION",
            EventKind::Backend,
            &[
                "INT_ELIMINATED",
                "SIMD_ELIMINATED",
                "INT_NOT_ELIMINATED",
                "SIMD_NOT_ELIMINATED",
            ],
        ),
        ("ARITH", EventKind::Backend, &["DIVIDER_UOPS"]),
        ("ROB_MISC_EVENTS", EventKind::Backend, &["LBR_INSERTS"]),
        (
            "LSD",
            EventKind::Frontend,
            &["UOPS", "CYCLES_ACTIVE", "CYCLES_4_UOPS"],
        ),
        ("RS_EVENTS", EventKind::Backend, &["EMPTY_CYCLES"]),
        (
            "LOCK_CYCLES",
            EventKind::Memory,
            &["CACHE_LOCK_DURATION", "SPLIT_LOCK_UC_LOCK_DURATION"],
        ),
        ("SQ_MISC", EventKind::Cache, &["SPLIT_LOCK"]),
        ("TLB_FLUSH", EventKind::Tlb, &["DTLB_THREAD"]),
        (
            "CPU_CLK_THREAD_UNHALTED",
            EventKind::Backend,
            &["ONE_THREAD_ACTIVE", "REF_XCLK"],
        ),
        ("MISALIGN_MEM_REF", EventKind::Memory, &["LOADS", "STORES"]),
        (
            "MACHINE_CLEARS",
            EventKind::Backend,
            &["SMC", "MASKMOV", "CYCLES"],
        ),
        (
            "OTHER_ASSISTS",
            EventKind::Other,
            &["AVX_TO_SSE", "SSE_TO_AVX", "ANY_WB_ASSIST"],
        ),
        (
            "UOPS_RETIRED",
            EventKind::Backend,
            &["STALL_CYCLES", "TOTAL_CYCLES", "CORE_STALL_CYCLES"],
        ),
        ("INST_RETIRED", EventKind::Backend, &["ANY_P", "X87"]),
        ("CPL_CYCLES", EventKind::Other, &["RING0", "RING123"]),
        (
            "HLE_RETIRED",
            EventKind::Other,
            &["START", "COMMIT", "ABORTED"],
        ),
        (
            "RTM_RETIRED",
            EventKind::Other,
            &["START", "COMMIT", "ABORTED"],
        ),
        (
            "MEM_TRANS_RETIRED",
            EventKind::Memory,
            &[
                "LOAD_LATENCY_GT_4",
                "LOAD_LATENCY_GT_8",
                "LOAD_LATENCY_GT_16",
                "LOAD_LATENCY_GT_32",
                "LOAD_LATENCY_GT_64",
                "LOAD_LATENCY_GT_128",
                "LOAD_LATENCY_GT_256",
                "LOAD_LATENCY_GT_512",
            ],
        ),
    ];
    for &(group, kind, members) in groups {
        for member in members {
            push(
                format!("{group}.{member}"),
                kind,
                format!("{} / {}", group.replace('_', " "), member.replace('_', " ")),
            );
        }
    }

    // Offcore response matrix: request type x response type.
    for request in [
        "DEMAND_DATA_RD",
        "DEMAND_CODE_RD",
        "DEMAND_RFO",
        "PF_L2_DATA_RD",
        "PF_L2_RFO",
        "PF_L3_DATA_RD",
        "PF_L3_RFO",
        "ALL_READS",
    ] {
        for response in [
            "ANY_RESPONSE",
            "LLC_HIT",
            "LLC_MISS.LOCAL_DRAM",
            "LLC_MISS.REMOTE_DRAM",
        ] {
            push(
                format!("OFFCORE_RESPONSE.{request}.{response}"),
                EventKind::Memory,
                format!(
                    "offcore response: {} / {}",
                    request.replace('_', " "),
                    response.replace('_', " ")
                ),
            );
        }
    }

    out
}

fn heuristic_family(name: &str) -> TailFamily {
    const LONG_TAIL_MARKERS: &[&str] = &[
        "MISS", "STALL", "WALK", "CLEAR", "FLUSH", "ABORT", "SPLIT", "LOCK", "ASSIST", "REMOTE",
        "LATENCY", "PENDING", "EMPTY", "RECOVERY", "SWITCH", "BLOCK", "FULL", "MISALIGN",
    ];
    if LONG_TAIL_MARKERS.iter().any(|m| name.contains(m)) {
        TailFamily::LongTail
    } else {
        TailFamily::Gaussian
    }
}

/// Nudges generated-event families so the catalog matches the paper's
/// reported 100 Gaussian / 129 long-tail split for this processor model.
fn calibrate_families(raw: &mut [RawEvent]) {
    let gaussian = raw
        .iter()
        .filter(|e| e.family == TailFamily::Gaussian)
        .count();
    let (from, to, excess) = if gaussian > HASWELL_GAUSSIAN_COUNT {
        (
            TailFamily::Gaussian,
            TailFamily::LongTail,
            gaussian - HASWELL_GAUSSIAN_COUNT,
        )
    } else {
        (
            TailFamily::LongTail,
            TailFamily::Gaussian,
            HASWELL_GAUSSIAN_COUNT - gaussian,
        )
    };
    let mut remaining = excess;
    // Only reclassify auto-generated events, from the end of the catalog,
    // so the named Table III events keep their documented families.
    for e in raw.iter_mut().rev() {
        if remaining == 0 {
            break;
        }
        if e.abbrev.is_empty() && e.family == from {
            e.family = to;
            e.base_scale = scale_for(e.kind, to);
            remaining -= 1;
        }
    }
    assert_eq!(remaining, 0, "could not calibrate family split");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haswell_has_229_events() {
        let c = EventCatalog::haswell();
        assert_eq!(c.len(), HASWELL_EVENT_COUNT);
        assert!(!c.is_empty());
    }

    #[test]
    fn family_split_matches_paper() {
        let c = EventCatalog::haswell();
        let gaussian = c
            .iter()
            .filter(|e| e.family() == TailFamily::Gaussian)
            .count();
        assert_eq!(gaussian, HASWELL_GAUSSIAN_COUNT);
        assert_eq!(c.len() - gaussian, 129);
    }

    #[test]
    fn all_named_abbrevs_resolve() {
        let c = EventCatalog::haswell();
        for a in abbrev::ALL_NAMED {
            let info = c
                .by_abbrev(a)
                .unwrap_or_else(|| panic!("abbrev {a} missing from catalog"));
            assert_eq!(info.abbrev(), *a);
        }
    }

    #[test]
    fn ids_are_dense_and_consistent() {
        let c = EventCatalog::haswell();
        for (i, e) in c.iter().enumerate() {
            assert_eq!(e.id().index(), i);
            assert_eq!(c.info(e.id()).name(), e.name());
        }
    }

    #[test]
    fn lookup_by_name() {
        let c = EventCatalog::haswell();
        let icm = c.by_name("ICACHE.MISSES").unwrap();
        assert_eq!(icm.abbrev(), abbrev::ICM);
        assert!(c.by_name("NO.SUCH.EVENT").is_none());
    }

    #[test]
    fn get_out_of_range_is_none() {
        let c = EventCatalog::haswell();
        assert!(c.get(EventId::new(c.len())).is_none());
        assert!(c.get(EventId::new(0)).is_some());
    }

    #[test]
    fn branch_and_l2_and_remote_helpers() {
        let c = EventCatalog::haswell();
        assert!(c.by_abbrev(abbrev::BRB).unwrap().is_branch_related());
        assert!(!c.by_abbrev(abbrev::ICM).unwrap().is_branch_related());
        assert!(c.by_abbrev(abbrev::L2H).unwrap().is_l2_related());
        assert!(c.by_abbrev(abbrev::ORA).unwrap().is_remote());
        assert!(!c.by_abbrev(abbrev::BRB).unwrap().is_remote());
    }

    #[test]
    fn scales_are_positive() {
        let c = EventCatalog::haswell();
        assert!(c.iter().all(|e| e.base_scale() > 0.0));
    }

    #[test]
    fn isf_is_the_instruction_queue_stall_event() {
        let c = EventCatalog::haswell();
        let isf = c.by_abbrev(abbrev::ISF).unwrap();
        assert_eq!(isf.name(), "ILD_STALL.IQ_FULL");
        assert_eq!(isf.family(), TailFamily::LongTail);
    }

    #[test]
    fn auto_abbrevs_do_not_collide() {
        // Construction would panic on collision; building is the test.
        let c = EventCatalog::haswell();
        let abbrevs: std::collections::HashSet<&str> = c.iter().map(|e| e.abbrev()).collect();
        assert_eq!(abbrevs.len(), c.len());
    }
}
