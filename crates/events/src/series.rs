use crate::id::EventId;
use std::collections::BTreeMap;
use std::fmt;

/// How a run's event values were measured (Section II-A of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SampleMode {
    /// One counter one event: each selected event owns a hardware counter
    /// for the whole run. Accurate but limited to `#counters` events.
    Ocoe,
    /// Multiplexing: events time-share counters; full behaviour is
    /// extrapolated from samples. Efficient but noisy.
    Mlpx,
}

impl fmt::Display for SampleMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SampleMode::Ocoe => f.write_str("OCOE"),
            SampleMode::Mlpx => f.write_str("MLPX"),
        }
    }
}

/// A variable-length series of sampled event values (Eq. 5 of the paper).
///
/// Series lengths differ between runs of the same program because of OS
/// nondeterminism, which is why the paper compares series with dynamic
/// time warping rather than pointwise distance.
///
/// Missing values are recorded as `0.0`, mirroring what a multiplexing
/// profiler emits when an event was never scheduled while it occurred;
/// the data cleaner decides which zeros are genuine.
///
/// # Examples
///
/// ```
/// use cm_events::TimeSeries;
///
/// let ts: TimeSeries = [1.0, 2.0, 0.0, 4.0].into_iter().collect();
/// assert_eq!(ts.len(), 4);
/// assert_eq!(ts.zero_count(), 1);
/// assert_eq!(ts.max(), Some(4.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty time series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a series from raw sampled values.
    pub fn from_values(values: Vec<f64>) -> Self {
        TimeSeries { values }
    }

    /// Appends a sampled value.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Number of samples in the series.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The raw sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the sample values (used by the data cleaner).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Consumes the series, returning the underlying vector.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Iterates over sample values.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.values.iter().copied()
    }

    /// Minimum sample value, or `None` for an empty series.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Maximum sample value, or `None` for an empty series.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// Arithmetic mean, or `None` for an empty series.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Number of exactly-zero samples (candidate missing values).
    pub fn zero_count(&self) -> usize {
        self.values.iter().filter(|&&v| v == 0.0).count()
    }
}

impl FromIterator<f64> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        TimeSeries {
            values: iter.into_iter().collect(),
        }
    }
}

impl Extend<f64> for TimeSeries {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        self.values.extend(iter);
    }
}

impl From<Vec<f64>> for TimeSeries {
    fn from(values: Vec<f64>) -> Self {
        TimeSeries { values }
    }
}

impl<'a> IntoIterator for &'a TimeSeries {
    type Item = f64;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, f64>>;

    fn into_iter(self) -> Self::IntoIter {
        self.values.iter().copied()
    }
}

/// Everything measured during one run of one program: per-event time
/// series plus run metadata.
///
/// This is the unit the data collector hands to the store (one
/// second-level table per run, in the paper's two-level organization).
#[derive(Debug, Clone)]
pub struct RunRecord {
    program: String,
    run_index: u32,
    mode: SampleMode,
    exec_time_secs: f64,
    series: BTreeMap<EventId, TimeSeries>,
}

impl RunRecord {
    /// Creates an empty record for one run of `program`.
    pub fn new(program: impl Into<String>, run_index: u32, mode: SampleMode) -> Self {
        RunRecord {
            program: program.into(),
            run_index,
            mode,
            exec_time_secs: 0.0,
            series: BTreeMap::new(),
        }
    }

    /// The profiled program's name.
    pub fn program(&self) -> &str {
        &self.program
    }

    /// Which run of the program this is (0-based).
    pub fn run_index(&self) -> u32 {
        self.run_index
    }

    /// The measurement mode used for this run.
    pub fn mode(&self) -> SampleMode {
        self.mode
    }

    /// Wall-clock execution time of the run, in seconds.
    pub fn exec_time_secs(&self) -> f64 {
        self.exec_time_secs
    }

    /// Sets the wall-clock execution time.
    pub fn set_exec_time_secs(&mut self, secs: f64) {
        self.exec_time_secs = secs;
    }

    /// Adds (or replaces) the series measured for `event`.
    pub fn insert_series(&mut self, event: EventId, series: TimeSeries) {
        self.series.insert(event, series);
    }

    /// The series measured for `event`, if it was part of this run.
    pub fn series(&self, event: EventId) -> Option<&TimeSeries> {
        self.series.get(&event)
    }

    /// Iterates over `(event, series)` pairs in event-id order.
    pub fn iter(&self) -> impl Iterator<Item = (EventId, &TimeSeries)> {
        self.series.iter().map(|(&id, ts)| (id, ts))
    }

    /// The events measured in this run, in id order.
    pub fn events(&self) -> impl Iterator<Item = EventId> + '_ {
        self.series.keys().copied()
    }

    /// Number of events measured in this run.
    pub fn event_count(&self) -> usize {
        self.series.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_stats() {
        let ts = TimeSeries::from_values(vec![3.0, 1.0, 2.0]);
        assert_eq!(ts.min(), Some(1.0));
        assert_eq!(ts.max(), Some(3.0));
        assert_eq!(ts.mean(), Some(2.0));
        assert_eq!(ts.sum(), 6.0);
    }

    #[test]
    fn empty_series_stats_are_none() {
        let ts = TimeSeries::new();
        assert!(ts.is_empty());
        assert_eq!(ts.min(), None);
        assert_eq!(ts.max(), None);
        assert_eq!(ts.mean(), None);
        assert_eq!(ts.sum(), 0.0);
    }

    #[test]
    fn zero_count_counts_exact_zeros() {
        let ts = TimeSeries::from_values(vec![0.0, 0.5, 0.0, -0.0]);
        // -0.0 == 0.0 in IEEE comparison.
        assert_eq!(ts.zero_count(), 3);
    }

    #[test]
    fn series_collect_and_extend() {
        let mut ts: TimeSeries = [1.0, 2.0].into_iter().collect();
        ts.extend([3.0]);
        ts.push(4.0);
        assert_eq!(ts.values(), &[1.0, 2.0, 3.0, 4.0]);
        let v = ts.into_values();
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn run_record_accessors() {
        let mut run = RunRecord::new("wordcount", 2, SampleMode::Mlpx);
        run.set_exec_time_secs(12.5);
        run.insert_series(EventId::new(7), TimeSeries::from_values(vec![1.0]));
        run.insert_series(EventId::new(3), TimeSeries::from_values(vec![2.0, 3.0]));

        assert_eq!(run.program(), "wordcount");
        assert_eq!(run.run_index(), 2);
        assert_eq!(run.mode(), SampleMode::Mlpx);
        assert_eq!(run.exec_time_secs(), 12.5);
        assert_eq!(run.event_count(), 2);
        // BTreeMap keeps id order.
        let ids: Vec<usize> = run.events().map(|e| e.index()).collect();
        assert_eq!(ids, vec![3, 7]);
        assert!(run.series(EventId::new(7)).is_some());
        assert!(run.series(EventId::new(9)).is_none());
    }

    #[test]
    fn sample_mode_display() {
        assert_eq!(SampleMode::Ocoe.to_string(), "OCOE");
        assert_eq!(SampleMode::Mlpx.to_string(), "MLPX");
    }
}
