//! Event catalog and time-series primitives for CounterMiner.
//!
//! This crate models the *measurement vocabulary* of a modern performance
//! monitoring unit (PMU): the set of microarchitectural events a processor
//! can count, and the variable-length time series produced when a profiler
//! samples those events while a program runs.
//!
//! The catalog is modeled on the Haswell-E processors used in the paper
//! (Intel Xeon E5-2630 v3): **229 events**, of which roughly 100 have
//! Gaussian-distributed per-interval values and 129 have long-tail
//! (generalized extreme value) distributions — the split the paper reports
//! from its Anderson–Darling testing.
//!
//! # Examples
//!
//! ```
//! use cm_events::{EventCatalog, abbrev};
//!
//! let catalog = EventCatalog::haswell();
//! assert_eq!(catalog.len(), 229);
//!
//! let isf = catalog.by_abbrev(abbrev::ISF).unwrap();
//! assert!(isf.description().contains("instruction queue"));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod abbrev;
mod catalog;
mod id;
mod series;

pub use catalog::{EventCatalog, EventInfo, EventKind, TailFamily};
pub use id::{EventId, EventSet};
pub use series::{RunRecord, SampleMode, TimeSeries};
