//! Event abbreviations used throughout the paper (Table III).
//!
//! Figures 9–13 and 16 of the paper label events by three-letter
//! abbreviations. These constants name every abbreviation that appears in
//! a top-10 importance or interaction list, so experiment code and tests
//! can refer to events symbolically instead of via string literals.
//!
//! # Examples
//!
//! ```
//! use cm_events::{EventCatalog, abbrev};
//!
//! let catalog = EventCatalog::haswell();
//! assert!(catalog.by_abbrev(abbrev::BRB).is_some());
//! ```

/// Stall cycles due to the instruction queue being full — the paper's most
/// important event for the majority of cloud benchmarks.
pub const ISF: &str = "ISF";
/// Branch instructions executed.
pub const BRE: &str = "BRE";
/// Successfully retired branch instructions.
pub const BRB: &str = "BRB";
/// Mispredicted but finally retired branch instructions.
pub const BMP: &str = "BMP";
/// Retired conditional branch instructions.
pub const BRC: &str = "BRC";
/// Retired not-taken branch instructions.
pub const BNT: &str = "BNT";
/// Branch address clears (front-end resteers).
pub const BAA: &str = "BAA";
/// Offcore read requests served by remote DRAM.
pub const ORA: &str = "ORA";
/// Offcore requests served by a remote cache.
pub const ORO: &str = "ORO";
/// Uops retired, all.
pub const URA: &str = "URA";
/// Uops retired, retire slots used.
pub const URS: &str = "URS";
/// Instructions retired (precise distribution).
pub const IPD: &str = "IPD";
/// Memory uops retired: split loads.
pub const MSL: &str = "MSL";
/// Memory uops retired: split stores.
pub const MST: &str = "MST";
/// Memory load uops retired missing the last-level cache.
pub const MLL: &str = "MLL";
/// Memory uops retired: all loads.
pub const MUL: &str = "MUL";
/// Load uops whose L3 miss was served by remote DRAM.
pub const MMR: &str = "MMR";
/// Load uops hitting L3 with a cross-core snoop hit.
pub const LMH: &str = "LMH";
/// Load uops hitting L3 without snoop.
pub const LHN: &str = "LHN";
/// Load uops whose L3 miss hit a remote cache in modified state.
pub const LRC: &str = "LRC";
/// Load uops whose L3 miss was forwarded from a remote cache.
pub const LRA: &str = "LRA";
/// Instruction TLB misses causing a page walk.
pub const ITM: &str = "ITM";
/// Instruction TLB miss walks completed.
pub const IMT: &str = "IMT";
/// Data TLB store misses causing a page walk.
pub const DSP: &str = "DSP";
/// Data TLB store misses hitting the second-level TLB.
pub const DSH: &str = "DSH";
/// Uops delivered to the instruction decode queue from the decode stream
/// buffer — the outlier example of Fig. 2(a).
pub const IDU: &str = "IDU";
/// Cycles the IDQ delivered four uops from the MITE path.
pub const IM4: &str = "IM4";
/// Cycles the MITE path delivered uops to the IDQ.
pub const IMC: &str = "IMC";
/// Cycles the IDQ delivered four uops from the DSB path — the case study's
/// deliberately unimportant event.
pub const I4U: &str = "I4U";
/// Instruction cache misses — the error-metric event of Figs. 1, 6 and the
/// missing-value example of Fig. 2(b).
pub const ICM: &str = "ICM";
/// Cycles with a pending L1D miss.
pub const CAC: &str = "CAC";
/// Hardware assists of any kind.
pub const OTS: &str = "OTS";
/// Second-level TLB flushes.
pub const TFA: &str = "TFA";
/// Instruction-TLB page-walker loads hitting the L3.
pub const PI3: &str = "PI3";
/// Machine clears due to memory ordering.
pub const MIE: &str = "MIE";
/// Machine clears, total count.
pub const MCO: &str = "MCO";
/// Offcore request buffer (super queue) full cycles.
pub const CRX: &str = "CRX";
/// Instruction-length-decoder stalls on length-changing prefixes.
pub const ISL: &str = "ISL";
/// L2 demand data read hits.
pub const L2H: &str = "L2H";
/// L2 demand data reads, total.
pub const L2R: &str = "L2R";
/// L2 code read hits.
pub const L2C: &str = "L2C";
/// L2 code reads, total.
pub const L2A: &str = "L2A";
/// L2 demand data read misses.
pub const L2M: &str = "L2M";
/// L2 RFO (store) requests.
pub const L2S: &str = "L2S";

/// All named abbreviations, in catalog order.
pub const ALL_NAMED: &[&str] = &[
    ISF, BRE, BRB, BMP, BRC, BNT, BAA, ORA, ORO, URA, URS, IPD, MSL, MST, MLL, MUL, MMR, LMH, LHN,
    LRC, LRA, ITM, IMT, DSP, DSH, IDU, IM4, IMC, I4U, ICM, CAC, OTS, TFA, PI3, MIE, MCO, CRX, ISL,
    L2H, L2R, L2C, L2A, L2M, L2S,
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn named_abbrevs_are_unique() {
        let set: HashSet<&str> = ALL_NAMED.iter().copied().collect();
        assert_eq!(set.len(), ALL_NAMED.len());
    }

    #[test]
    fn named_abbrevs_are_three_letters() {
        for a in ALL_NAMED {
            assert_eq!(a.len(), 3, "abbrev {a} is not three characters");
        }
    }
}
