use std::fmt;

/// Identifier of a microarchitectural event within an [`EventCatalog`].
///
/// Event ids are dense indices `0..catalog.len()`, so they can be used
/// directly to index per-event arrays.
///
/// [`EventCatalog`]: crate::EventCatalog
///
/// # Examples
///
/// ```
/// use cm_events::EventId;
///
/// let id = EventId::new(42);
/// assert_eq!(id.index(), 42);
/// assert_eq!(format!("{id}"), "e42");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u16);

impl EventId {
    /// Creates an event id from a dense catalog index.
    pub fn new(index: usize) -> Self {
        EventId(u16::try_from(index).expect("event index fits in u16"))
    }

    /// Returns the dense catalog index of this event.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<EventId> for usize {
    fn from(id: EventId) -> usize {
        id.index()
    }
}

/// An ordered, duplicate-free set of events selected for measurement.
///
/// The order is meaningful: a PMU multiplexing schedule assigns events to
/// counters in set order, and importance rankings preserve it for
/// tie-breaking.
///
/// # Examples
///
/// ```
/// use cm_events::{EventId, EventSet};
///
/// let mut set = EventSet::new();
/// set.insert(EventId::new(3));
/// set.insert(EventId::new(1));
/// set.insert(EventId::new(3)); // duplicate, ignored
/// assert_eq!(set.len(), 2);
/// assert!(set.contains(EventId::new(1)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventSet {
    ids: Vec<EventId>,
}

impl EventSet {
    /// Creates an empty event set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a set holding the first `n` catalog events, `e0..e(n-1)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use cm_events::EventSet;
    /// let set = EventSet::first_n(4);
    /// assert_eq!(set.len(), 4);
    /// ```
    pub fn first_n(n: usize) -> Self {
        EventSet {
            ids: (0..n).map(EventId::new).collect(),
        }
    }

    /// Inserts an event, keeping insertion order; duplicates are ignored.
    ///
    /// Returns `true` if the event was newly inserted.
    pub fn insert(&mut self, id: EventId) -> bool {
        if self.ids.contains(&id) {
            false
        } else {
            self.ids.push(id);
            true
        }
    }

    /// Removes an event if present. Returns `true` if it was present.
    pub fn remove(&mut self, id: EventId) -> bool {
        match self.ids.iter().position(|&e| e == id) {
            Some(pos) => {
                self.ids.remove(pos);
                true
            }
            None => false,
        }
    }

    /// Returns `true` if `id` is in the set.
    pub fn contains(&self, id: EventId) -> bool {
        self.ids.contains(&id)
    }

    /// Number of events in the set.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Returns `true` if the set holds no events.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Iterates over the events in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = EventId> + '_ {
        self.ids.iter().copied()
    }

    /// Returns the events as a slice in insertion order.
    pub fn as_slice(&self) -> &[EventId] {
        &self.ids
    }

    /// Union: `self`'s events followed by `other`'s new ones.
    pub fn union(&self, other: &EventSet) -> EventSet {
        let mut out = self.clone();
        out.extend(other.iter());
        out
    }

    /// Intersection, in `self`'s order.
    pub fn intersection(&self, other: &EventSet) -> EventSet {
        self.iter().filter(|&e| other.contains(e)).collect()
    }

    /// Events of `self` not in `other`, in `self`'s order.
    pub fn difference(&self, other: &EventSet) -> EventSet {
        self.iter().filter(|&e| !other.contains(e)).collect()
    }
}

impl FromIterator<EventId> for EventSet {
    fn from_iter<I: IntoIterator<Item = EventId>>(iter: I) -> Self {
        let mut set = EventSet::new();
        for id in iter {
            set.insert(id);
        }
        set
    }
}

impl Extend<EventId> for EventSet {
    fn extend<I: IntoIterator<Item = EventId>>(&mut self, iter: I) {
        for id in iter {
            self.insert(id);
        }
    }
}

impl<'a> IntoIterator for &'a EventSet {
    type Item = EventId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, EventId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.ids.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_id_roundtrip() {
        let id = EventId::new(117);
        assert_eq!(id.index(), 117);
        assert_eq!(usize::from(id), 117);
    }

    #[test]
    fn event_id_display() {
        assert_eq!(EventId::new(0).to_string(), "e0");
        assert_eq!(EventId::new(228).to_string(), "e228");
    }

    #[test]
    fn set_insert_preserves_order_and_dedups() {
        let mut set = EventSet::new();
        assert!(set.insert(EventId::new(5)));
        assert!(set.insert(EventId::new(2)));
        assert!(!set.insert(EventId::new(5)));
        let order: Vec<usize> = set.iter().map(|e| e.index()).collect();
        assert_eq!(order, vec![5, 2]);
    }

    #[test]
    fn set_remove() {
        let mut set = EventSet::first_n(3);
        assert!(set.remove(EventId::new(1)));
        assert!(!set.remove(EventId::new(1)));
        assert_eq!(set.len(), 2);
        assert!(!set.contains(EventId::new(1)));
    }

    #[test]
    fn set_from_iterator_dedups() {
        let set: EventSet = [0, 1, 1, 2, 0].into_iter().map(EventId::new).collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn set_algebra() {
        let a: EventSet = [1, 2, 3].into_iter().map(EventId::new).collect();
        let b: EventSet = [3, 4].into_iter().map(EventId::new).collect();

        let union = a.union(&b);
        assert_eq!(
            union.iter().map(|e| e.index()).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
        let inter = a.intersection(&b);
        assert_eq!(inter.iter().map(|e| e.index()).collect::<Vec<_>>(), vec![3]);
        let diff = a.difference(&b);
        assert_eq!(
            diff.iter().map(|e| e.index()).collect::<Vec<_>>(),
            vec![1, 2]
        );
        // Identities.
        assert_eq!(a.union(&EventSet::new()), a);
        assert!(a.intersection(&EventSet::new()).is_empty());
        assert_eq!(a.difference(&EventSet::new()), a);
    }

    #[test]
    fn empty_set() {
        let set = EventSet::new();
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
        assert_eq!(set.iter().count(), 0);
    }
}
