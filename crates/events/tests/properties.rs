//! Property-based tests for event-set and time-series primitives.

use cm_events::{EventId, EventSet, TimeSeries};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn event_set_behaves_like_a_set(indices in prop::collection::vec(0usize..256, 0..64)) {
        let set: EventSet = indices.iter().map(|&i| EventId::new(i)).collect();
        let reference: std::collections::BTreeSet<usize> = indices.iter().copied().collect();
        prop_assert_eq!(set.len(), reference.len());
        for &i in &reference {
            prop_assert!(set.contains(EventId::new(i)));
        }
        // Insertion order is first-occurrence order.
        let mut seen = std::collections::HashSet::new();
        let expected_order: Vec<usize> = indices
            .iter()
            .copied()
            .filter(|&i| seen.insert(i))
            .collect();
        let actual: Vec<usize> = set.iter().map(|e| e.index()).collect();
        prop_assert_eq!(actual, expected_order);
    }

    #[test]
    fn remove_undoes_insert(indices in prop::collection::vec(0usize..64, 1..32)) {
        let mut set: EventSet = indices.iter().map(|&i| EventId::new(i)).collect();
        let victim = EventId::new(indices[0]);
        prop_assert!(set.remove(victim));
        prop_assert!(!set.contains(victim));
        prop_assert!(!set.remove(victim));
    }

    #[test]
    fn time_series_stats_are_consistent(values in prop::collection::vec(-1.0e9..1.0e9f64, 1..128)) {
        let ts = TimeSeries::from_values(values.clone());
        let min = ts.min().unwrap();
        let max = ts.max().unwrap();
        let mean = ts.mean().unwrap();
        prop_assert!(min <= max);
        prop_assert!(mean >= min - 1e-6 && mean <= max + 1e-6);
        prop_assert!((ts.sum() - values.iter().sum::<f64>()).abs() < 1e-3);
        prop_assert_eq!(ts.len(), values.len());
    }

    #[test]
    fn zero_count_matches_manual_count(values in prop::collection::vec(prop_oneof![Just(0.0f64), -10.0..10.0f64], 0..64)) {
        let ts = TimeSeries::from_values(values.clone());
        let manual = values.iter().filter(|&&v| v == 0.0).count();
        prop_assert_eq!(ts.zero_count(), manual);
    }
}
