//! Persist once, analyze many times: the columnar store as a pipeline
//! snapshot.
//!
//! The expensive half of CounterMiner is measurement and cleaning; the
//! interesting half — modeling, importance ranking — is what gets
//! re-run while iterating. This example ingests one benchmark into a
//! persistent columnar store (`.cmstore` file), then runs the analysis
//! twice against it: the first run is *cold* (collects, cleans,
//! commits), the second is *warm* (resumes from the persisted cleaned
//! series, skipping PMU simulation and cleaning) and produces
//! bit-identical rankings. The cm-obs counters printed at the end prove
//! which stages actually ran.
//!
//! Run with: `cargo run --release --example persist_resume`

use cm_ml::SgbrtConfig;
use cm_obs::{Mode, Registry};
use cm_sim::Benchmark;
use cm_store::Store;
use counterminer::{CounterMiner, ImportanceConfig, MinerConfig};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = MinerConfig {
        runs_per_benchmark: 2,
        events_to_measure: Some(60),
        importance: ImportanceConfig {
            sgbrt: SgbrtConfig {
                n_trees: 80,
                ..SgbrtConfig::default()
            },
            prune_step: 10,
            min_events: 20,
            ..ImportanceConfig::default()
        },
        ..MinerConfig::default()
    };

    let dir = std::env::temp_dir().join(format!("cm_persist_resume_{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("wordcount.cmstore");
    let _ = std::fs::remove_file(&path);

    // Count stage activity so the resume is visible, not just asserted.
    cm_obs::set_mode(Mode::Summary);

    // Cold: collect, clean, persist, model.
    let mut store = Store::open(&path)?;
    let mut miner = CounterMiner::new(config);
    Registry::global().drain();
    let started = Instant::now();
    let cold = miner.analyze_with_store(Benchmark::Wordcount, &mut store)?;
    let cold_time = started.elapsed();
    let cold_obs = Registry::global().drain();

    // Warm: a brand-new store handle (think: a later process) resumes
    // from the committed snapshot.
    drop(store);
    let mut store = Store::open(&path)?;
    let mut miner = CounterMiner::new(config);
    let started = Instant::now();
    let warm = miner.analyze_with_store(Benchmark::Wordcount, &mut store)?;
    let warm_time = started.elapsed();
    let warm_obs = Registry::global().drain();
    cm_obs::set_mode(Mode::Off);

    let info = store.info();
    println!(
        "store {}: {} series, {} values, {} bytes on disk",
        path.display(),
        info.series,
        info.total_values,
        info.file_bytes
    );
    println!(
        "cold analyze: {cold_time:.1?} (collected {} run(s), {} PMU samples)",
        cold_obs.counters.get("collector.runs").unwrap_or(&0),
        cold_obs.counters.get("pmu.samples").unwrap_or(&0),
    );
    println!(
        "warm analyze: {warm_time:.1?} (collected {} run(s), {} PMU samples — resumed from the store)",
        warm_obs.counters.get("collector.runs").unwrap_or(&0),
        warm_obs.counters.get("pmu.samples").unwrap_or(&0),
    );

    assert_eq!(cold.eir.ranking, warm.eir.ranking);
    println!("\nrankings are bit-identical; top 5 events:");
    for (event, importance) in warm.eir.top(5) {
        let info = miner.catalog().info(*event);
        println!(
            "  {:<4} {:<44} {:5.1}%",
            info.abbrev(),
            info.name(),
            importance
        );
    }
    Ok(())
}
