//! Quickstart: the CounterMiner pipeline end to end on one benchmark.
//!
//! Collects multiplexed counter data for HiBench `wordcount` on the
//! simulated Haswell-E PMU, cleans it, trains SGBRT performance models
//! with Event Importance Refinement, and prints the top events and
//! interaction pairs.
//!
//! Run with: `cargo run --release --example quickstart`

use cm_ml::SgbrtConfig;
use cm_sim::Benchmark;
use counterminer::{CounterMiner, ImportanceConfig, MinerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A moderate configuration so the example finishes in seconds:
    // measure 60 events (multiplexed on 4 counters) over 2 runs.
    let config = MinerConfig {
        runs_per_benchmark: 2,
        events_to_measure: Some(60),
        importance: ImportanceConfig {
            sgbrt: SgbrtConfig {
                n_trees: 80,
                ..SgbrtConfig::default()
            },
            prune_step: 10,
            min_events: 20,
            ..ImportanceConfig::default()
        },
        ..MinerConfig::default()
    };

    let mut miner = CounterMiner::new(config);
    println!("analyzing {} ...", Benchmark::Wordcount);
    let report = miner.analyze(Benchmark::Wordcount)?;

    println!(
        "\ncleaning: {} outliers replaced, {} missing values filled",
        report.outliers_replaced, report.missing_filled
    );

    println!("\nEIR error curve (events -> held-out error):");
    for it in &report.eir.iterations {
        println!("  {:>3} events -> {:.1}%", it.n_events, it.error * 100.0);
    }
    println!(
        "MAPM: {} events, {:.1}% error",
        report.eir.mapm_events.len(),
        report.eir.best_error() * 100.0
    );

    println!("\ntop 10 events by importance:");
    for (event, importance) in report.eir.top(10) {
        let info = miner.catalog().info(*event);
        println!(
            "  {:<4} {:<44} {:5.1}%",
            info.abbrev(),
            info.name(),
            importance
        );
    }

    println!("\ntop 5 interaction pairs:");
    for pair in report.interactions.iter().take(5) {
        println!(
            "  {}-{}  {:5.1}%",
            miner.catalog().info(pair.pair.0).abbrev(),
            miner.catalog().info(pair.pair.1).abbrev(),
            pair.share
        );
    }

    println!(
        "\nruns stored in the two-level database: {}",
        miner.database().run_count()
    );
    Ok(())
}
