//! The Section V-D case study: tuning Spark configuration parameters
//! guided by event importance.
//!
//! 1. Rank (parameter, event) interaction intensities for `sort`.
//! 2. Sweep the parameter coupled to the most important event (bbs) and
//!    a parameter coupled to an unimportant one (nwt); compare the
//!    execution-time swing.
//! 3. Print the method A vs. method B profiling-cost accounting.
//!
//! Run with: `cargo run --release --example spark_tuning`

use cm_events::EventCatalog;
use cm_sim::{Benchmark, SparkParam, SparkStudy};
use counterminer::case_study::{
    rank_param_event_interactions, sweep_parameter, ProfilingCostModel,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = EventCatalog::haswell();
    let study = SparkStudy::new(Benchmark::Sort, &catalog);

    println!("(parameter, event) interaction ranking for sort:");
    let ranked = rank_param_event_interactions(&study, &catalog, 6, 7)?;
    for (param, event, share) in ranked.iter().take(6) {
        println!(
            "  {:<4} ({:<40}) <-> {:<4} {:5.1}%",
            param.abbrev(),
            param.spark_name(),
            event,
            share
        );
    }

    println!("\nsweeping the dominant knob vs. an unimportant one:");
    for param in [SparkParam::BroadcastBlockSize, SparkParam::NetworkTimeout] {
        let sweep = sweep_parameter(&study, param, 8, 7)?;
        print!("  {:<4}", param.abbrev());
        for (label, secs) in &sweep.points {
            print!("  {label}={secs:.0}s");
        }
        println!("   variation {:.1}%", sweep.variation_percent());
    }

    println!("\nprofiling cost to find the important parameters (90% model):");
    let cost = ProfilingCostModel::default();
    println!(
        "  method B (rank parameters directly): {} runs",
        cost.method_b_runs(0.9)
    );
    println!(
        "  method A (via event importance):     {} runs ({} model + {} coupling)",
        cost.method_a_runs(0.9),
        cost.method_a_model_runs(0.9),
        cost.coupling_runs()
    );
    println!("  speedup: {:.1}x", cost.speedup(0.9));
    Ok(())
}
