//! Co-located workloads (Section V-E): what happens to event importance
//! when two programs share a node.
//!
//! Measures `DataCaching + DataCaching` (homogeneous — behaves like
//! solo) and `DataCaching + GraphAnalytics` (heterogeneous — L2 events
//! surge into the top ranks) on the shared PMU.
//!
//! Run with: `cargo run --release --example colocation`

use cm_events::{EventCatalog, EventId, EventSet};
use cm_ml::SgbrtConfig;
use cm_sim::{Benchmark, ColocatedWorkload, PmuConfig};
use counterminer::{collector, DataCleaner, ImportanceConfig, ImportanceRanker};

fn analyze_pair(
    a: Benchmark,
    b: Benchmark,
    catalog: &EventCatalog,
) -> Result<(), Box<dyn std::error::Error>> {
    let pair = ColocatedWorkload::new(a, b, catalog);
    let pmu = PmuConfig::default();

    // Measure the union of both solo profiles, the L2 family, and
    // filler events up to 60.
    let mut events = EventSet::new();
    for bench in [a, b] {
        for abbrev in bench.importance_profile() {
            events.insert(catalog.by_abbrev(abbrev).expect("profile event").id());
        }
    }
    for abbrev in ["L2H", "L2R", "L2C", "L2A", "L2M", "L2S", "BRE"] {
        events.insert(catalog.by_abbrev(abbrev).expect("named event").id());
    }
    for info in catalog.iter() {
        if events.len() >= 60 {
            break;
        }
        events.insert(info.id());
    }

    let runs: Vec<_> = (0..2)
        .map(|i| {
            let truth = pair.generate_run(i, 11);
            pmu.measure_mlpx(&pair, &truth, &events, i, 11)
        })
        .collect();

    let ids: Vec<EventId> = events.iter().collect();
    let cleaner = DataCleaner::default();
    let data = collector::build_dataset(&runs, &ids, Some(&cleaner))?;
    let data = collector::normalize_columns(&data)?;
    let eir = ImportanceRanker::new(ImportanceConfig {
        sgbrt: SgbrtConfig {
            n_trees: 80,
            ..SgbrtConfig::default()
        },
        min_events: 20,
        ..ImportanceConfig::default()
    })
    .rank(&data, &ids)?;

    println!("{}:", pair.name());
    let mut l2 = 0;
    for (event, importance) in eir.top(10) {
        let abbrev = catalog.info(*event).abbrev();
        if abbrev.starts_with("L2") {
            l2 += 1;
        }
        print!("  {abbrev}={importance:.1}%");
    }
    println!("\n  -> {l2} L2 events in the top 10\n");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = EventCatalog::haswell();
    analyze_pair(Benchmark::DataCaching, Benchmark::DataCaching, &catalog)?;
    analyze_pair(Benchmark::DataCaching, Benchmark::GraphAnalytics, &catalog)?;
    println!(
        "paper: the homogeneous pair ranks like solo DataCaching; the\n\
         heterogeneous pair promotes BRE and six L2 events — mixed\n\
         instruction/data footprints thrash the private caches."
    );
    Ok(())
}
