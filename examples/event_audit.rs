//! Event distribution audit (Section III-B's statistical groundwork).
//!
//! Measures a batch of events OCOE-style, runs the Anderson–Darling
//! normality test on every series, and — for the non-Gaussian ones —
//! compares GEV, Gumbel, and logistic fits, reproducing the paper's
//! observation that event values split into Gaussian and GEV-like
//! long-tail families. Also demonstrates persisting the measured runs in
//! the two-level store and loading them back.
//!
//! Run with: `cargo run --release --example event_audit`

use cm_events::{EventCatalog, SampleMode};
use cm_sim::{Benchmark, PmuConfig, Workload};
use cm_stats::anderson::{self, TailCandidate};
use cm_store::Database;
use counterminer::collector;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = EventCatalog::haswell();
    let workload = Workload::new(Benchmark::Kmeans, &catalog);
    let pmu = PmuConfig::default();
    let events = workload.top_event_ids(&catalog, 40);

    let runs = collector::collect_runs(&workload, &events, SampleMode::Ocoe, 1, &pmu, 5);
    let run = &runs[0];

    let mut gaussian = 0usize;
    let mut long_tail = 0usize;
    let mut gev_best = 0usize;
    for (event, series) in run.record.iter() {
        let info = catalog.info(event);
        match anderson::normality_test(series.values()) {
            Ok(result) if result.is_normal() => gaussian += 1,
            Ok(_) => {
                long_tail += 1;
                if let Ok(fits) = anderson::best_tail_fit(series.values()) {
                    if fits[0].0 == TailCandidate::Gev {
                        gev_best += 1;
                    }
                    println!(
                        "  {:<4} {:<44} long-tail, best fit {:?} (A2 = {:.2})",
                        info.abbrev(),
                        info.name(),
                        fits[0].0,
                        fits[0].1
                    );
                }
            }
            Err(e) => println!("  {:<4} untestable: {e}", info.abbrev()),
        }
    }
    println!("\n{gaussian} Gaussian series, {long_tail} long-tail ({gev_best} best fit by GEV)");
    println!("paper: of 229 events, 100 were Gaussian and 129 long-tail, GEV fitting best");

    // Persist and reload through the two-level store.
    let mut db = Database::new();
    collector::store_runs(&mut db, &runs)?;
    let dir = std::env::temp_dir().join("counterminer_event_audit");
    db.save_to_dir(&dir)?;
    let loaded = Database::load_from_dir(&dir)?;
    let summary = loaded.summary(Benchmark::Kmeans.name()).expect("stored");
    println!(
        "\nstore round-trip: {} run(s) of {} with {} events, tables {:?}",
        summary.run_count,
        summary.program,
        summary.events.len(),
        summary.table_names
    );
    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
