//! Importance-ranking integration: the EIR pipeline must recover the
//! simulator's ground-truth importance structure from dirty multiplexed
//! data.

use cm_events::EventId;
use cm_ml::SgbrtConfig;
use cm_sim::{global_noise_events, Benchmark};
use counterminer::{CounterMiner, ImportanceConfig, MinerConfig};

fn config(seed: u64) -> MinerConfig {
    MinerConfig {
        runs_per_benchmark: 2,
        events_to_measure: Some(30),
        importance: ImportanceConfig {
            sgbrt: SgbrtConfig {
                n_trees: 60,
                ..SgbrtConfig::default()
            },
            prune_step: 5,
            min_events: 15,
            seed,
            ..ImportanceConfig::default()
        },
        seed,
        ..MinerConfig::default()
    }
}

#[test]
fn dominant_profile_events_surface() {
    // Sort has two clearly dominant events (ORO, IDU): at least one must
    // make the recovered top-3 from 30 measured events.
    let mut miner = CounterMiner::new(config(2));
    let report = miner.analyze(Benchmark::Sort).unwrap();
    let top3: Vec<&str> = report
        .eir
        .top(3)
        .iter()
        .map(|&(e, _)| miner.catalog().info(e).abbrev())
        .collect();
    let dominant = &Benchmark::Sort.importance_profile()[..2];
    assert!(
        top3.iter().any(|a| dominant.contains(a)),
        "top-3 {top3:?} missed both of {dominant:?}"
    );
}

#[test]
fn one_three_smi_law_holds() {
    // The leading events' importance clearly exceeds the mid-ranking
    // tail (the paper's one-three SMI law).
    let mut miner = CounterMiner::new(config(3));
    let report = miner.analyze(Benchmark::Wordcount).unwrap();
    let ranking = &report.eir.ranking;
    let head = ranking[0].1;
    let mid: f64 = ranking[5..10.min(ranking.len())]
        .iter()
        .map(|&(_, v)| v)
        .sum::<f64>()
        / 5.0;
    assert!(
        head > 1.5 * mid,
        "no dominance: head {head:.1}% vs mid {mid:.1}%"
    );
}

#[test]
fn eir_curve_records_every_iteration_and_mapm_is_best() {
    let mut miner = CounterMiner::new(config(4));
    let report = miner.analyze(Benchmark::Kmeans).unwrap();
    let errors: Vec<f64> = report.eir.iterations.iter().map(|i| i.error).collect();
    let best = report.eir.best_error();
    assert!(errors.iter().all(|&e| e >= best - 1e-12));
    assert_eq!(report.eir.iterations[report.eir.best_iteration].error, best);
    // The MAPM achieves a sane relative error on held-out data.
    assert!(best < 0.35, "MAPM error {best:.2} is implausibly high");
}

#[test]
fn noise_events_lose_to_dominant_events() {
    // Measure a set containing both the benchmark profile and known
    // ground-truth noise events: the noise events must not out-rank the
    // dominant profile event.
    let mut miner = CounterMiner::new(config(5));
    let report = miner.analyze(Benchmark::Aggregation).unwrap();
    let catalog = miner.catalog();
    let noise: Vec<EventId> = global_noise_events(catalog);

    let dominant_abbrev = Benchmark::Aggregation.importance_profile()[0];
    let dominant_id = catalog.by_abbrev(dominant_abbrev).unwrap().id();
    let rank_of = |id: EventId| report.eir.ranking.iter().position(|&(e, _)| e == id);
    let dominant_rank = match rank_of(dominant_id) {
        Some(r) => r,
        // The dominant event may not even be in the measured 30; then
        // there is nothing to compare.
        None => return,
    };
    let noise_better = noise
        .iter()
        .filter_map(|&id| rank_of(id))
        .filter(|&r| r < dominant_rank)
        .count();
    assert!(
        noise_better <= 1,
        "{noise_better} pure-noise events outranked the dominant event"
    );
}
