//! Documentation link sanity: every relative Markdown link in the
//! repository's top-level docs must point at a file (or directory) that
//! actually exists, and every anchor-only or external link is left
//! alone. Keeps `README.md`, `DESIGN.md`, `ROADMAP.md`, `CHANGELOG.md`,
//! and everything under `docs/` from rotting as files move.

use std::path::{Path, PathBuf};

/// Repository root, two levels above the core crate's manifest.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

/// The documents whose links we check.
fn documents() -> Vec<PathBuf> {
    let root = repo_root();
    let mut docs: Vec<PathBuf> = ["README.md", "DESIGN.md", "ROADMAP.md", "CHANGELOG.md"]
        .iter()
        .map(|name| root.join(name))
        .filter(|p| p.exists())
        .collect();
    if let Ok(entries) = std::fs::read_dir(root.join("docs")) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "md") {
                docs.push(path);
            }
        }
    }
    docs
}

/// Extracts `[text](target)` link targets from Markdown, skipping
/// fenced code blocks and inline code spans.
fn link_targets(markdown: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let mut in_fence = false;
    for line in markdown.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut rest = line;
        while let Some(open) = rest.find("](") {
            let after = &rest[open + 2..];
            let Some(close) = after.find(')') else { break };
            let target = &after[..close];
            // Backticked pseudo-links (`[...](...)`
            // inside code spans) are rare enough to not special-case;
            // real code spans with parens don't match the `](` shape.
            targets.push(target.to_string());
            rest = &after[close + 1..];
        }
    }
    targets
}

#[test]
fn relative_links_resolve() {
    let mut checked = 0;
    let mut broken = Vec::new();
    for doc in documents() {
        let text = std::fs::read_to_string(&doc).unwrap();
        let base = doc.parent().unwrap().to_path_buf();
        for target in link_targets(&text) {
            // External links, mailto, and in-page anchors are out of
            // scope for a filesystem check.
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
                || target.starts_with('#')
                || target.is_empty()
            {
                continue;
            }
            // Strip an anchor suffix: `FILE.md#section` checks FILE.md.
            let file_part = target.split('#').next().unwrap();
            if file_part.is_empty() {
                continue;
            }
            checked += 1;
            if !base.join(file_part).exists() {
                broken.push(format!("{}: {target}", doc.display()));
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken relative links:\n{}",
        broken.join("\n")
    );
    assert!(
        checked >= 3,
        "expected to check several relative links, found {checked}; \
         did the docs move?"
    );
}

/// GitHub-style anchor slug for a Markdown heading: lowercase, spaces
/// to hyphens, punctuation dropped (hyphens kept).
fn heading_slug(heading: &str) -> String {
    heading
        .trim()
        .chars()
        .filter_map(|c| {
            if c.is_alphanumeric() {
                Some(c.to_ascii_lowercase())
            } else if c == ' ' || c == '-' {
                Some(if c == ' ' { '-' } else { c })
            } else {
                None
            }
        })
        .collect()
}

/// Every heading anchor a document defines, skipping fenced code.
fn anchors(markdown: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in markdown.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if !in_fence && line.starts_with('#') {
            out.push(heading_slug(line.trim_start_matches('#')));
        }
    }
    out
}

#[test]
fn section_anchors_resolve() {
    let mut checked = 0;
    let mut broken = Vec::new();
    for doc in documents() {
        let text = std::fs::read_to_string(&doc).unwrap();
        let base = doc.parent().unwrap().to_path_buf();
        for target in link_targets(&text) {
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
            {
                continue;
            }
            // `#anchor` points into this document; `FILE.md#anchor`
            // into another. Either way the anchor must match a heading.
            let (file_part, anchor) = match target.split_once('#') {
                Some((f, a)) if !a.is_empty() => (f, a),
                _ => continue,
            };
            let target_doc = if file_part.is_empty() {
                doc.clone()
            } else {
                let p = base.join(file_part);
                if !p.exists() || p.extension().is_none_or(|e| e != "md") {
                    continue; // relative_links_resolve covers existence
                }
                p
            };
            checked += 1;
            let target_text = std::fs::read_to_string(&target_doc).unwrap();
            if !anchors(&target_text).contains(&anchor.to_string()) {
                broken.push(format!("{}: #{anchor} not in {file_part:?}", doc.display()));
            }
        }
    }
    assert!(
        broken.is_empty(),
        "dangling section anchors:\n{}",
        broken.join("\n")
    );
    assert!(
        checked >= 2,
        "expected to check several section anchors, found {checked}; \
         did the docs drop their tables of contents?"
    );
}

#[test]
fn core_documents_exist() {
    let root = repo_root();
    for name in [
        "README.md",
        "DESIGN.md",
        "ROADMAP.md",
        "CHANGELOG.md",
        "docs/ARCHITECTURE.md",
        "docs/STORAGE_FORMAT.md",
        "docs/CLEANING.md",
        "docs/CLUSTERING.md",
    ] {
        assert!(root.join(name).exists(), "missing {name}");
    }
}
