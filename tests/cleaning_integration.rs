//! Cleaning against the simulator: the data cleaner must reduce the
//! paper's DTW-based MLPX error (Eqs. 1–4) on real simulated runs.

use cm_events::{abbrev, EventCatalog};
use cm_sim::{Benchmark, PmuConfig, Workload};
use counterminer::error_metrics::mlpx_error;
use counterminer::DataCleaner;

#[test]
fn cleaning_reduces_mlpx_error_on_average() {
    let catalog = EventCatalog::haswell();
    let pmu = PmuConfig::default();
    let cleaner = DataCleaner::default();
    let icm = catalog.by_abbrev(abbrev::ICM).unwrap().id();

    let mut raw_total = 0.0;
    let mut clean_total = 0.0;
    let mut count = 0;
    for benchmark in [
        Benchmark::Wordcount,
        Benchmark::Sort,
        Benchmark::DataCaching,
    ] {
        let workload = Workload::new(benchmark, &catalog);
        let events = workload.top_event_ids(&catalog, 10);
        for seed in 0..2 {
            let ocoe1 = pmu.simulate_ocoe(&workload, &events, 0, seed);
            let ocoe2 = pmu.simulate_ocoe(&workload, &events, 1, seed);
            let mlpx = pmu.simulate_mlpx(&workload, &events, 2, seed);
            let s1 = ocoe1.record.series(icm).unwrap();
            let s2 = ocoe2.record.series(icm).unwrap();
            let sm = mlpx.record.series(icm).unwrap();
            raw_total += mlpx_error(s1, s2, sm).unwrap();
            let (cleaned, report) = cleaner.clean_series(sm).unwrap();
            clean_total += mlpx_error(s1, s2, &cleaned).unwrap();
            // The dirty series really was dirty.
            assert!(
                report.outliers_replaced + report.missing_filled > 0,
                "{benchmark} seed {seed}: nothing to clean?"
            );
            count += 1;
        }
    }
    let raw = raw_total / count as f64;
    let cleaned = clean_total / count as f64;
    assert!(
        cleaned < 0.7 * raw,
        "cleaning should cut the error substantially: raw {raw:.1}%, cleaned {cleaned:.1}%"
    );
    // The paper's ballpark: raw tens of percent, cleaned single digits
    // to low tens.
    assert!(raw > 10.0, "raw error implausibly low: {raw:.1}%");
    assert!(cleaned < 25.0, "cleaned error too high: {cleaned:.1}%");
}

#[test]
fn cleaner_reports_per_event_activity_on_a_real_run() {
    let catalog = EventCatalog::haswell();
    let pmu = PmuConfig::default();
    let workload = Workload::new(Benchmark::Join, &catalog);
    let events = workload.top_event_ids(&catalog, 16);
    let mut run = pmu.simulate_mlpx(&workload, &events, 0, 9).record;

    let cleaner = DataCleaner::default();
    let reports = cleaner.clean_run(&mut run).unwrap();
    assert_eq!(reports.len(), 16);
    let total_fixed: usize = reports
        .iter()
        .map(|r| r.outliers_replaced + r.missing_filled)
        .sum();
    assert!(total_fixed > 0);
    // After cleaning, no series should retain a giant spike above its
    // threshold.
    for (event, series) in run.iter() {
        let report = &reports[run.events().position(|e| e == event).unwrap()];
        let above: usize = series
            .iter()
            .filter(|&v| v > report.threshold * 1.001)
            .count();
        assert_eq!(above, 0, "event {event} kept values above threshold");
    }
}

#[test]
fn ocoe_runs_need_no_cleaning() {
    let catalog = EventCatalog::haswell();
    let pmu = PmuConfig::default();
    let workload = Workload::new(Benchmark::Bayes, &catalog);
    let events = workload.top_event_ids(&catalog, 4);
    let run = pmu.simulate_ocoe(&workload, &events, 0, 4);
    let cleaner = DataCleaner::default();
    for (_, series) in run.record.iter() {
        let (_, report) = cleaner.clean_series(series).unwrap();
        // Dedicated counters produce no missing values.
        assert_eq!(report.missing_filled, 0);
    }
}

#[test]
fn streaming_cleaner_tracks_offline_cleaner_on_simulated_runs() {
    use counterminer::{CleanerConfig, StreamingCleaner};

    let catalog = EventCatalog::haswell();
    let pmu = PmuConfig::default();
    let workload = Workload::new(Benchmark::Wordcount, &catalog);
    let events = workload.top_event_ids(&catalog, 16);
    let icm = catalog.by_abbrev(abbrev::ICM).unwrap().id();
    let run = pmu.simulate_mlpx(&workload, &events, 0, 21);
    let dirty = run.record.series(icm).unwrap();

    // Offline cleaning (the paper's pipeline).
    let cleaner = DataCleaner::default();
    let (_, offline_report) = cleaner.clean_series(dirty).unwrap();

    // Streaming cleaning of the same series.
    let mut stream = StreamingCleaner::new(CleanerConfig::default(), 48);
    for v in dirty.iter() {
        stream.push(v);
    }

    // Online must catch a comparable amount of dirt — at least half of
    // what the offline cleaner (which sees the whole series) found.
    let offline_total = offline_report.outliers_replaced + offline_report.missing_filled;
    let online_total = stream.outliers_replaced() + stream.missing_filled();
    assert!(offline_total > 0, "nothing to clean in this run?");
    assert!(
        online_total * 2 >= offline_total,
        "online {online_total} vs offline {offline_total}"
    );
}
