//! Cross-thread-count determinism: the parallel execution layer must
//! never change results. Training an SGBRT and running the full EIR
//! procedure with 1 worker, 2 workers, and all cores must produce
//! bit-identical models, predictions, and rankings.

use cm_ml::{Dataset, SgbrtConfig, Trainer, TreeConfig};
use counterminer::{ImportanceConfig, ImportanceRanker};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn synthetic(n: usize, features: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..features).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let y: Vec<f64> = rows
        .iter()
        .map(|r| 1.5 - r[0] + 0.5 * r[1] * r[2] + 0.02 * rng.gen_range(-1.0..1.0))
        .collect();
    Dataset::new(rows, y).unwrap()
}

/// Thread counts the suite sweeps: serial, two workers, all cores.
const THREAD_COUNTS: [usize; 3] = [1, 2, 0];

#[test]
fn sgbrt_training_and_prediction_are_identical_at_any_thread_count() {
    let data = synthetic(300, 6, 42);
    for trainer in [Trainer::Exact, Trainer::Hist] {
        let config = SgbrtConfig {
            n_trees: 80,
            tree: TreeConfig::default(),
            trainer,
            ..SgbrtConfig::default()
        };

        let models: Vec<_> = THREAD_COUNTS
            .iter()
            .map(|&t| {
                cm_par::set_max_threads(t);
                let model = config.fit(&data).unwrap();
                let preds = model.predict_batch(data.rows());
                (model, preds)
            })
            .collect();
        cm_par::set_max_threads(0);

        for (model, preds) in &models[1..] {
            assert_eq!(
                *model, models[0].0,
                "{trainer:?} model differs across threads"
            );
            assert_eq!(
                *preds, models[0].1,
                "{trainer:?} predictions differ across threads"
            );
        }
    }
}

#[test]
fn eir_ranking_is_identical_at_any_thread_count() {
    let data = synthetic(250, 7, 7);
    let events: Vec<_> = (0..7).map(cm_events::EventId::new).collect();
    for trainer in [Trainer::Exact, Trainer::Hist] {
        let config = ImportanceConfig {
            sgbrt: SgbrtConfig {
                n_trees: 50,
                trainer,
                ..SgbrtConfig::default()
            },
            prune_step: 2,
            min_events: 3,
            ..ImportanceConfig::default()
        };

        let results: Vec<_> = THREAD_COUNTS
            .iter()
            .map(|&t| {
                cm_par::set_max_threads(t);
                ImportanceRanker::new(config).rank(&data, &events).unwrap()
            })
            .collect();
        cm_par::set_max_threads(0);

        for result in &results[1..] {
            assert_eq!(
                *result, results[0],
                "{trainer:?} EIR result differs across threads"
            );
        }
    }
}
