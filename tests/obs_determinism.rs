//! Observability determinism: every count-valued metric the pipeline
//! records — counters, histogram counts, series points, span counts —
//! must be bit-identical at any thread count. Only durations (`*_ns`
//! counters, span times) and scheduling-scoped metrics (`par.sched.*`)
//! may vary; [`cm_obs::Snapshot::deterministic_counters`] encodes that
//! exemption and this test enforces it end to end over a full
//! `analyze` run.

use cm_ml::{SgbrtConfig, TreeConfig};
use cm_obs::{Mode, Registry, Snapshot};
use cm_sim::Benchmark;
use counterminer::{CounterMiner, ImportanceConfig, MinerConfig};
use std::sync::Mutex;

/// The observability mode and registry are process-global; tests that
/// reconfigure them must not interleave.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A configuration small enough for a debug-mode end-to-end run.
fn tiny_config() -> MinerConfig {
    MinerConfig {
        runs_per_benchmark: 1,
        events_to_measure: Some(14),
        importance: ImportanceConfig {
            sgbrt: SgbrtConfig {
                n_trees: 40,
                tree: TreeConfig {
                    max_depth: 3,
                    ..TreeConfig::default()
                },
                ..SgbrtConfig::default()
            },
            prune_step: 3,
            min_events: 8,
            ..ImportanceConfig::default()
        },
        interaction_top_k: 4,
        ..MinerConfig::default()
    }
}

/// Runs one full analysis at the given thread budget and returns the
/// drained snapshot plus the report's EIR curve.
fn analyze_with_threads(threads: usize) -> (Snapshot, Vec<(f64, f64)>) {
    cm_par::set_max_threads(threads);
    // Drop anything a previous run left behind, then collect fresh.
    Registry::global().drain();
    let mut miner = CounterMiner::new(tiny_config());
    let report = miner.analyze(Benchmark::Sort).unwrap();
    let curve: Vec<(f64, f64)> = report
        .eir
        .iterations
        .iter()
        .map(|it| (it.n_events as f64, it.error))
        .collect();
    (Registry::global().drain(), curve)
}

#[test]
fn count_valued_metrics_are_identical_across_thread_counts() {
    let _guard = serialized();
    cm_obs::set_mode(Mode::Summary);

    let (serial, serial_curve) = analyze_with_threads(1);
    let (parallel, parallel_curve) = analyze_with_threads(8);
    cm_par::set_max_threads(0);
    cm_obs::set_mode(Mode::Off);

    // Something was actually recorded.
    assert_eq!(
        serial.counters.get("pipeline.analyses"),
        Some(&1),
        "expected an instrumented analyze run, got {:?}",
        serial.counters
    );
    assert!(serial.counters.contains_key("cleaner.series"));
    assert!(serial.counters.contains_key("ml.fits"));
    assert!(serial.counters.contains_key("pmu.samples"));

    // The determinism contract: everything count-valued is identical.
    assert_eq!(
        serial.deterministic_counters(),
        parallel.deterministic_counters(),
        "count-valued counters differ across thread counts"
    );
    assert_eq!(
        serial.histograms, parallel.histograms,
        "histograms differ across thread counts"
    );
    assert_eq!(
        serial.series, parallel.series,
        "series differ across thread counts"
    );
    assert_eq!(
        serial.span_counts(),
        parallel.span_counts(),
        "span entry counts differ across thread counts"
    );
    assert_eq!(serial.gauges, parallel.gauges);
    assert_eq!(serial.labels, parallel.labels);

    // The recorded EIR curve is exactly the report's iteration data,
    // and both runs agree on it.
    assert_eq!(serial.series["eir.cv_error"], serial_curve);
    assert_eq!(serial_curve, parallel_curve);
}

#[test]
fn json_report_carries_the_eir_curve() {
    let _guard = serialized();
    cm_obs::set_mode(Mode::Json(None));
    cm_par::set_max_threads(0);
    Registry::global().drain();

    let mut miner = CounterMiner::new(tiny_config());
    let report = miner.analyze(Benchmark::Scan).unwrap();
    let snap = Registry::global().drain();
    cm_obs::set_mode(Mode::Off);

    let json = cm_obs::render_json(&snap);
    // Per-stage spans and counters are present as JSON lines...
    for needle in [
        r#""type":"span","path":"analyze{benchmark=scan}""#,
        r#"/eir""#,
        r#""type":"counter","name":"eir.rounds""#,
        r#""type":"counter","name":"pmu.samples""#,
        r#""type":"label","name":"ml.trainer""#,
    ] {
        assert!(
            json.contains(needle),
            "JSON output missing {needle}:\n{json}"
        );
    }
    // ...including the full per-round CV-error curve.
    let curve_points: Vec<String> = report
        .eir
        .iterations
        .iter()
        .map(|it| format!("[{},{}]", it.n_events, it.error))
        .collect();
    let expected = format!(
        r#""type":"series","name":"eir.cv_error","points":[{}]"#,
        curve_points.join(",")
    );
    assert!(
        json.contains(&expected),
        "JSON output missing EIR curve {expected}:\n{json}"
    );
}

#[test]
fn off_mode_records_nothing() {
    let _guard = serialized();
    cm_obs::set_mode(Mode::Off);
    Registry::global().drain();
    let mut miner = CounterMiner::new(tiny_config());
    miner.analyze(Benchmark::Join).unwrap();
    let snap = Registry::global().drain();
    assert!(snap.counters.is_empty());
    assert!(snap.spans.is_empty());
    assert!(snap.series.is_empty());
    assert!(snap.histograms.is_empty());
}
