//! Chaos integration: the full ingest → clean → rank pipeline under
//! seeded adversarial inputs and injected store faults.
//!
//! The invariant, for every seed: **typed error or correct result —
//! never a panic, never a NaN in a ranking, never a torn store after
//! recovery.** Each sweep runs 64 seeds; a failure names the seed, and
//! replaying it reproduces the exact same inputs and fault schedule.

use cm_chaos::{gen, ChaosRng, FaultFs};
use cm_events::TimeSeries;
use cm_ml::{SgbrtConfig, TreeConfig};
use cm_sim::Benchmark;
use cm_store::{CacheConfig, Store};
use counterminer::{CounterMiner, DataCleaner, ImportanceConfig, MinerConfig};
use std::path::PathBuf;
use std::sync::Arc;

const SEEDS: u64 = 64;

/// Small enough that 64 full pipeline runs stay inside the CI budget,
/// real enough that collection, cleaning, EIR, and interactions all run.
fn tiny_config(seed: u64) -> MinerConfig {
    MinerConfig {
        runs_per_benchmark: 1,
        events_to_measure: Some(12),
        importance: ImportanceConfig {
            sgbrt: SgbrtConfig {
                n_trees: 12,
                tree: TreeConfig {
                    max_depth: 2,
                    ..TreeConfig::default()
                },
                ..SgbrtConfig::default()
            },
            prune_step: 4,
            min_events: 8,
            ..ImportanceConfig::default()
        },
        interaction_top_k: 3,
        seed,
        ..MinerConfig::default()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cm_chaos_integ_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The cleaner over every adversarial series shape: either a typed
/// error or an all-finite cleaned series. NaN must never leak through.
#[test]
fn cleaner_survives_adversarial_series() {
    let cleaner = DataCleaner::default();
    for seed in 0..SEEDS {
        let mut rng = ChaosRng::new(seed);
        for _ in 0..8 {
            let (shape, values) = gen::any_series(&mut rng);
            match cleaner.clean_series(&TimeSeries::from_values(values)) {
                Err(_) => {} // typed rejection: acceptable
                Ok((clean, report)) => {
                    assert!(
                        clean.values().iter().all(|v| v.is_finite()),
                        "seed {seed} {shape:?}: non-finite value in cleaned output"
                    );
                    assert!(
                        report.threshold.is_finite(),
                        "seed {seed} {shape:?}: non-finite threshold"
                    );
                }
            }
        }
    }
}

/// The full store-backed pipeline under injected I/O faults, 64 seeds:
/// zero panics, zero NaN importance, typed errors for injected faults.
#[test]
fn pipeline_survives_store_faults() {
    let dir = temp_dir("pipeline");
    let mut completed = 0u32;
    let mut injected_total = 0u64;

    for seed in 0..SEEDS {
        let path = dir.join(format!("p{seed}.cmstore"));
        let fs = Arc::new(FaultFs::new(seed));
        let mut miner = CounterMiner::new(tiny_config(seed));

        let outcome = (|| {
            let mut store = Store::open_with_vfs(&path, CacheConfig::default(), fs.clone())?;
            miner.analyze_with_store(Benchmark::Wordcount, &mut store)
        })();
        injected_total += fs.injected();

        match outcome {
            Err(_) => {} // typed pipeline/store error: acceptable
            Ok(report) => {
                completed += 1;
                assert!(
                    !report.eir.ranking.is_empty(),
                    "seed {seed}: empty ranking on success"
                );
                for &(event, importance) in &report.eir.ranking {
                    assert!(
                        importance.is_finite(),
                        "seed {seed}: NaN/inf importance for {event}"
                    );
                }
                for pair in &report.interactions {
                    assert!(
                        pair.intensity.is_finite() && pair.share.is_finite(),
                        "seed {seed}: non-finite interaction strength"
                    );
                }
            }
        }

        // Recovery: with faults disarmed, the store path either opens
        // to a usable store or reports typed corruption — never a torn
        // state that panics or decodes garbage.
        fs.disarm();
        match Store::open_with_vfs(&path, CacheConfig::default(), fs.clone()) {
            Err(_) => {}
            Ok(recovered) => {
                for key in recovered.series_keys().cloned().collect::<Vec<_>>() {
                    match recovered.read_series(&key) {
                        Err(_) => {} // typed corruption report
                        Ok(values) => assert!(
                            values.iter().all(|v| v.is_finite()),
                            "seed {seed}: recovered store yields non-finite samples"
                        ),
                    }
                }
            }
        }
    }

    assert!(injected_total > 0, "no seed injected any fault");
    assert!(completed > 0, "no seed completed the pipeline");
    assert!(
        completed < SEEDS as u32,
        "every seed completed — faults never reached the pipeline"
    );
}

/// Warm resume after a chaotic cold run: whatever the faults did, a
/// clean re-run against the same store must produce a NaN-free result
/// identical to a from-scratch analysis (the store never poisons it).
#[test]
fn chaotic_cold_run_never_poisons_a_clean_rerun() {
    let dir = temp_dir("rerun");
    for seed in [3u64, 17, 29, 41] {
        let path = dir.join(format!("r{seed}.cmstore"));
        let fs = Arc::new(FaultFs::new(seed));
        let mut miner = CounterMiner::new(tiny_config(0));
        // Cold run under fire; the outcome does not matter.
        let _ = (|| {
            let mut store = Store::open_with_vfs(&path, CacheConfig::default(), fs.clone())?;
            miner.analyze_with_store(Benchmark::Sort, &mut store)
        })();

        // Clean re-run through the real filesystem. It may resume from
        // a committed snapshot or re-collect; either way the result
        // must match an untouched baseline.
        let rerun = (|| {
            let mut store = Store::open(&path)?;
            let mut miner = CounterMiner::new(tiny_config(0));
            miner.analyze_with_store(Benchmark::Sort, &mut store)
        })();
        match rerun {
            Err(_) => {} // typed corruption surfaced: acceptable
            Ok(report) => {
                let mut baseline_miner = CounterMiner::new(tiny_config(0));
                let baseline = baseline_miner.analyze(Benchmark::Sort).unwrap();
                assert_eq!(
                    report.eir.ranking, baseline.eir.ranking,
                    "seed {seed}: chaotic store changed the ranking"
                );
            }
        }
    }
}
