//! Shape checks on the paper-reproduction experiments (quick scale):
//! the qualitative claims of each table/figure must hold even at reduced
//! repetition counts.

use cm_bench::experiments::*;
use cm_bench::ExpConfig;

fn cfg() -> ExpConfig {
    ExpConfig::quick()
}

#[test]
fn fig01_error_band_is_plausible() {
    let result = fig01_mlpx_error::run(&cfg()).unwrap();
    assert_eq!(result.errors.len(), 16);
    let avg = result.average();
    // Paper: 28.3 %. Allow a generous band at quick scale.
    assert!(avg > 10.0 && avg < 50.0, "avg error {avg:.1}%");
    assert!(result.min() < result.max());
}

#[test]
fn fig02_shows_outliers_and_missing_values() {
    let result = fig02_dirty_examples::run(&cfg()).unwrap();
    assert!(
        result.outlier_ratio() > 2.0,
        "no visible outlier (ratio {:.1})",
        result.outlier_ratio()
    );
    assert!(result.missing_count() > 0, "no missing values");
    assert!(
        result.ocoe_cold_start_ratio() > 1.3,
        "cold-start spike not visible under OCOE"
    );
}

#[test]
fn fig03_error_grows_with_event_count() {
    let result = fig03_error_vs_events::run(&cfg()).unwrap();
    assert_eq!(result.points.len(), 7);
    assert!(
        result.trend_slope() > 0.15,
        "error should clearly rise with multiplexed events: {:?}",
        result.points
    );
    // The 36-event error clearly exceeds the 10-event error.
    let first = result.points.first().unwrap().1;
    let last = result.points.last().unwrap().1;
    assert!(last > first + 3.0, "{first} -> {last}");
}

#[test]
fn table1_n5_reaches_target_coverage() {
    let result = table1_threshold_coverage::run(&cfg()).unwrap();
    assert_eq!(result.rows.len(), 16);
    let n = result.universal_n().expect("some candidate reaches 99%");
    assert!(n <= 5.0, "paper reaches 99% at n = 5; got n = {n}");
}

#[test]
fn fig05_cleaning_repairs_the_examples() {
    let result = fig05_cleaning_examples::run(&cfg()).unwrap();
    assert!(result.idu_report.outliers_replaced > 0);
    assert!(result.outlier_ratio_after() < result.dirty.outlier_ratio());
    assert!(result.icm_cleaned.zero_count() < result.dirty.icm_mlpx.zero_count());
}

#[test]
fn fig06_cleaning_reduces_error() {
    let result = fig06_error_reduction::run(&cfg()).unwrap();
    let raw = result.raw_average();
    let cleaned = result.cleaned_average();
    assert!(
        cleaned < 0.65 * raw,
        "cleaning should cut the error: {raw:.1}% -> {cleaned:.1}%"
    );
}

#[test]
fn fig14_important_knob_swings_more() {
    let result = fig14_tuning_sweep::run(&cfg()).unwrap();
    let bbs = result.bbs.variation_percent();
    let nwt = result.nwt.variation_percent();
    assert!(bbs > 2.0 * nwt, "bbs {bbs:.1}% vs nwt {nwt:.1}%");
    // Paper: 111.3 % vs 29.4 %.
    assert!(bbs > 50.0 && bbs < 250.0);
    assert!(nwt < 60.0);
}

#[test]
fn fig15_method_a_is_cheaper() {
    let result = fig15_profiling_cost::run(&cfg()).unwrap();
    assert_eq!(result.method_b(), 6000);
    assert!(result.method_a() < result.method_b() / 3);
    // The learning curve rises with more examples.
    let first = result.learning_curve.first().unwrap().1;
    let last = result.learning_curve.last().unwrap().1;
    assert!(
        last >= first - 5.0,
        "curve should not collapse: {first} -> {last}"
    );
}

#[test]
fn tables_print_complete_inventories() {
    let t2 = table2_benchmarks::run();
    assert_eq!(t2.benchmarks.len(), 16);
    assert!(t2.to_string().contains("Spark 2.0"));

    let t3 = table3_events::run();
    assert_eq!(t3.rows.len(), cm_events::abbrev::ALL_NAMED.len());
    assert!(t3.to_string().contains("ILD_STALL.IQ_FULL"));

    let t4 = table4_spark_params::run();
    assert_eq!(t4.params.len(), 13);
    assert!(t4.to_string().contains("spark.broadcast.blockSize"));
}

#[test]
fn ablation_components_both_contribute() {
    let result = ablation_cleaning::run(&cfg()).unwrap();
    assert!(result.outliers_only < result.raw);
    assert!(result.missing_only < result.raw);
    assert!(result.both <= result.outliers_only.min(result.missing_only) + 1.0);
    // The paper's n = 5 is at or near the sweep minimum.
    let best_n = result
        .n_sweep
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap()
        .0;
    assert!((4.0..=6.0).contains(&best_n), "best n = {best_n}");
}

#[test]
fn cleaning_composes_with_subinterval_estimation() {
    let result = baseline_subinterval::run(&cfg()).unwrap();
    assert!(result.scaling_cleaned < result.scaling_raw);
    assert!(result.subinterval_cleaned < result.subinterval_raw);
    // The composed pipeline is the best configuration.
    assert!(result.subinterval_cleaned <= result.scaling_cleaned + 1.5);
}

#[test]
fn fig13_sort_dominant_pair_is_oro_bbs() {
    let result = fig13_param_event_interactions::run(&cfg()).unwrap();
    assert_eq!(result.rows.len(), 8);
    let (event, param) = result.dominant(cm_sim::Benchmark::Sort).unwrap();
    assert_eq!(
        (event, param),
        ("ORO", "bbs"),
        "paper: ORO-bbs dominates sort"
    );
}
