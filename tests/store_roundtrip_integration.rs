//! Store integration: simulated runs survive a save/load round trip
//! bit-for-bit, and the first-level summaries mirror what was collected.

use cm_events::{EventId, SampleMode};
use cm_sim::{Benchmark, PmuConfig, Workload};
use cm_store::Database;
use counterminer::collector;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("counterminer_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn simulated_runs_round_trip_through_disk() {
    let catalog = cm_events::EventCatalog::haswell();
    let pmu = PmuConfig::default();
    let mut db = Database::new();

    for benchmark in [Benchmark::Wordcount, Benchmark::WebServing] {
        let workload = Workload::new(benchmark, &catalog);
        let events = workload.top_event_ids(&catalog, 8);
        let mlpx = collector::collect_runs(&workload, &events, SampleMode::Mlpx, 2, &pmu, 1);
        let ocoe = collector::collect_runs(&workload, &events, SampleMode::Ocoe, 1, &pmu, 1);
        collector::store_runs(&mut db, &mlpx).unwrap();
        collector::store_runs(&mut db, &ocoe).unwrap();
    }
    assert_eq!(db.run_count(), 6);

    let dir = temp_dir("roundtrip");
    db.save_to_dir(&dir).unwrap();
    let loaded = Database::load_from_dir(&dir).unwrap();
    assert_eq!(loaded.run_count(), db.run_count());

    for (key, run) in db.iter() {
        let got = loaded
            .run(&key.program, key.run_index, key.mode)
            .unwrap_or_else(|| panic!("missing {key:?}"));
        assert_eq!(got.exec_time_secs(), run.exec_time_secs());
        for (event, series) in run.iter() {
            assert_eq!(
                got.series(event).unwrap(),
                series,
                "{key:?} event {event} series drifted"
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn summaries_reflect_collected_runs() {
    let catalog = cm_events::EventCatalog::haswell();
    let pmu = PmuConfig::default();
    let workload = Workload::new(Benchmark::Scan, &catalog);
    let events = workload.top_event_ids(&catalog, 5);
    let runs = collector::collect_runs(&workload, &events, SampleMode::Mlpx, 3, &pmu, 2);
    let mut db = Database::new();
    collector::store_runs(&mut db, &runs).unwrap();

    let summary = db.summary("scan").unwrap();
    assert_eq!(summary.run_count, 3);
    assert_eq!(summary.events.len(), 5);
    assert_eq!(summary.table_names.len(), 3);
    assert!(summary.exec_times_secs.iter().all(|&t| t > 0.0));
    // The events recorded are exactly the measured set.
    let expected: Vec<EventId> = {
        let mut v: Vec<EventId> = events.iter().collect();
        v.sort();
        v
    };
    assert_eq!(summary.events, expected);
}

#[test]
fn variable_length_series_are_preserved() {
    // Two runs of the same program have different lengths (OS jitter);
    // the store must not normalize them.
    let catalog = cm_events::EventCatalog::haswell();
    let pmu = PmuConfig::default();
    let workload = Workload::new(Benchmark::Bayes, &catalog);
    let events = workload.top_event_ids(&catalog, 4);
    let runs = collector::collect_runs(&workload, &events, SampleMode::Ocoe, 4, &pmu, 3);
    let lens: Vec<usize> = runs.iter().map(|r| r.intervals()).collect();
    assert!(
        lens.windows(2).any(|w| w[0] != w[1]),
        "expected length jitter, got {lens:?}"
    );

    let mut db = Database::new();
    collector::store_runs(&mut db, &runs).unwrap();
    let dir = temp_dir("lengths");
    db.save_to_dir(&dir).unwrap();
    let loaded = Database::load_from_dir(&dir).unwrap();
    for (i, run) in runs.iter().enumerate() {
        let got = loaded.run("bayes", i as u32, SampleMode::Ocoe).unwrap();
        for (event, series) in run.record.iter() {
            assert_eq!(got.series(event).unwrap().len(), series.len());
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
