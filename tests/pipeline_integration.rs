//! End-to-end pipeline integration: collect → store → clean → rank.

use cm_ml::SgbrtConfig;
use cm_sim::Benchmark;
use counterminer::{CounterMiner, ImportanceConfig, MinerConfig};

fn small_config(seed: u64) -> MinerConfig {
    MinerConfig {
        runs_per_benchmark: 1,
        events_to_measure: Some(24),
        importance: ImportanceConfig {
            sgbrt: SgbrtConfig {
                n_trees: 50,
                ..SgbrtConfig::default()
            },
            prune_step: 4,
            min_events: 12,
            seed,
            ..ImportanceConfig::default()
        },
        interaction_top_k: 5,
        seed,
        ..MinerConfig::default()
    }
}

#[test]
fn analyze_produces_complete_report() {
    let mut miner = CounterMiner::new(small_config(1));
    let report = miner.analyze(Benchmark::Sort).unwrap();

    // Ranking covers the MAPM events and sums to 100 %.
    assert_eq!(report.eir.ranking.len(), report.eir.mapm_events.len());
    let total: f64 = report.eir.ranking.iter().map(|(_, v)| v).sum();
    assert!((total - 100.0).abs() < 1e-6);

    // EIR pruned from 24 down to 12 in steps of 4.
    let ns: Vec<usize> = report.eir.iterations.iter().map(|i| i.n_events).collect();
    assert_eq!(ns, vec![24, 20, 16, 12]);

    // 5 top events -> C(5,2) = 10 interaction pairs, shares sum to 100.
    assert_eq!(report.interactions.len(), 10);
    let share_total: f64 = report.interactions.iter().map(|p| p.share).sum();
    assert!((share_total - 100.0).abs() < 1e-6);

    // Multiplexing 24 events on 4 counters is dirty; the cleaner works.
    assert!(report.outliers_replaced + report.missing_filled > 0);

    // The collected run landed in the two-level store.
    assert_eq!(miner.database().run_count(), 1);
    let summary = miner
        .database()
        .summary(Benchmark::Sort.name())
        .expect("program stored");
    assert_eq!(summary.events.len(), 24);
}

#[test]
fn analysis_is_deterministic_per_seed() {
    let report_a = CounterMiner::new(small_config(7))
        .analyze(Benchmark::Scan)
        .unwrap();
    let report_b = CounterMiner::new(small_config(7))
        .analyze(Benchmark::Scan)
        .unwrap();
    assert_eq!(report_a.eir.ranking, report_b.eir.ranking);

    let report_c = CounterMiner::new(small_config(8))
        .analyze(Benchmark::Scan)
        .unwrap();
    assert_ne!(report_a.eir.ranking, report_c.eir.ranking);
}

#[test]
fn different_benchmarks_rank_differently() {
    // The paper's second finding: importance rankings vary across
    // benchmarks.
    let sort = CounterMiner::new(small_config(3))
        .analyze(Benchmark::Sort)
        .unwrap();
    let pagerank = CounterMiner::new(small_config(3))
        .analyze(Benchmark::Pagerank)
        .unwrap();
    let top_sort: Vec<_> = sort.eir.top(3).iter().map(|&(e, _)| e).collect();
    let top_pagerank: Vec<_> = pagerank.eir.top(3).iter().map(|&(e, _)| e).collect();
    assert_ne!(top_sort, top_pagerank);
}
