//! Store-backed pipeline resume, end to end: the first
//! `analyze_with_store` run collects, cleans, and commits a snapshot;
//! every later run with the same collection configuration must skip PMU
//! simulation and cleaning entirely — proven here through [`cm_obs`]
//! counters — and still produce **bit-identical** rankings.

use cm_ml::{SgbrtConfig, TreeConfig};
use cm_obs::{Mode, Registry, Snapshot};
use cm_sim::Benchmark;
use cm_store::Store;
use counterminer::{AnalysisReport, CounterMiner, ImportanceConfig, MinerConfig};
use std::path::PathBuf;
use std::sync::Mutex;

/// The observability mode and registry are process-global; tests that
/// reconfigure them must not interleave.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A configuration small enough for a debug-mode end-to-end run.
fn tiny_config() -> MinerConfig {
    MinerConfig {
        runs_per_benchmark: 1,
        events_to_measure: Some(14),
        importance: ImportanceConfig {
            sgbrt: SgbrtConfig {
                n_trees: 40,
                tree: TreeConfig {
                    max_depth: 3,
                    ..TreeConfig::default()
                },
                ..SgbrtConfig::default()
            },
            prune_step: 3,
            min_events: 8,
            ..ImportanceConfig::default()
        },
        interaction_top_k: 4,
        ..MinerConfig::default()
    }
}

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cm_resume_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("pipeline.cmstore")
}

fn rankings(report: &AnalysisReport) -> (Vec<(cm_events::EventId, f64)>, Vec<f64>) {
    (
        report.eir.ranking.clone(),
        report.interactions.iter().map(|p| p.intensity).collect(),
    )
}

#[test]
fn warm_run_skips_collection_and_cleaning_bit_identically() {
    let _guard = serialized();
    cm_obs::set_mode(Mode::Summary);
    let path = temp_store("warm");

    // Cold run: collect, clean, persist, model.
    Registry::global().drain();
    let mut store = Store::open(&path).unwrap();
    let mut miner = CounterMiner::new(tiny_config());
    let cold = miner
        .analyze_with_store(Benchmark::Wordcount, &mut store)
        .unwrap();
    let cold_obs: Snapshot = Registry::global().drain();

    // Warm run against a *freshly reopened* store: resume must survive
    // the original handle, i.e. come from the bytes on disk.
    drop(store);
    let mut store = Store::open(&path).unwrap();
    let mut miner = CounterMiner::new(tiny_config());
    let warm = miner
        .analyze_with_store(Benchmark::Wordcount, &mut store)
        .unwrap();
    let warm_obs: Snapshot = Registry::global().drain();
    cm_obs::set_mode(Mode::Off);

    // The cold run did the expensive front half...
    assert_eq!(cold_obs.counters.get("pipeline.resume.misses"), Some(&1));
    assert_eq!(cold_obs.counters.get("pipeline.resume.hits"), None);
    assert_eq!(cold_obs.counters.get("collector.runs"), Some(&1));
    assert!(cold_obs.counters["cleaner.series"] > 0);
    assert!(cold_obs.counters["pmu.samples"] > 0);
    assert!(cold_obs.counters["store.commits"] >= 1);
    assert!(cold_obs.counters["store.chunks_written"] > 0);

    // ...and the warm run skipped it: no simulation, no cleaning.
    assert_eq!(warm_obs.counters.get("pipeline.resume.hits"), Some(&1));
    assert_eq!(warm_obs.counters.get("pipeline.resume.misses"), None);
    assert!(
        !warm_obs.counters.contains_key("collector.runs"),
        "warm run must not collect, counters: {:?}",
        warm_obs.counters
    );
    assert!(!warm_obs.counters.contains_key("pmu.samples"));
    assert!(!warm_obs.counters.contains_key("cleaner.series"));
    assert!(!warm_obs.counters.contains_key("store.commits"));

    // Bit-identical outcomes.
    assert_eq!(rankings(&cold), rankings(&warm));
    assert_eq!(cold.outliers_replaced, warm.outliers_replaced);
    assert_eq!(cold.missing_filled, warm.missing_filled);
    assert_eq!(
        cold.eir
            .iterations
            .iter()
            .map(|it| (it.n_events, it.error))
            .collect::<Vec<_>>(),
        warm.eir
            .iterations
            .iter()
            .map(|it| (it.n_events, it.error))
            .collect::<Vec<_>>()
    );

    // And both agree exactly with the store-less in-memory pipeline.
    let mut plain = CounterMiner::new(tiny_config());
    let baseline = plain.analyze(Benchmark::Wordcount).unwrap();
    assert_eq!(rankings(&baseline), rankings(&warm));
    assert_eq!(baseline.outliers_replaced, warm.outliers_replaced);
    assert_eq!(baseline.missing_filled, warm.missing_filled);
}

#[test]
fn ingest_then_analyze_resumes_and_one_store_hosts_many_benchmarks() {
    let _guard = serialized();
    cm_obs::set_mode(Mode::Summary);
    let path = temp_store("multi");

    let mut store = Store::open(&path).unwrap();
    let mut miner = CounterMiner::new(tiny_config());
    let first = miner.ingest(Benchmark::Sort, &mut store).unwrap();
    assert!(!first.resumed);
    assert_eq!(first.runs, 1);
    assert_eq!(first.events, 14);
    let again = miner.ingest(Benchmark::Sort, &mut store).unwrap();
    assert!(again.resumed);
    assert_eq!(
        (first.outliers_replaced, first.missing_filled),
        (again.outliers_replaced, again.missing_filled)
    );
    let other = miner.ingest(Benchmark::Scan, &mut store).unwrap();
    assert!(!other.resumed, "each benchmark snapshots independently");

    // Both benchmarks now analyze warm out of the same file.
    Registry::global().drain();
    let warm_a = miner
        .analyze_with_store(Benchmark::Sort, &mut store)
        .unwrap();
    let warm_b = miner
        .analyze_with_store(Benchmark::Scan, &mut store)
        .unwrap();
    let obs = Registry::global().drain();
    cm_obs::set_mode(Mode::Off);

    assert_eq!(obs.counters.get("pipeline.resume.hits"), Some(&2));
    assert!(!obs.counters.contains_key("collector.runs"));
    assert!(!obs.counters.contains_key("cleaner.series"));
    assert!(!warm_a.eir.ranking.is_empty());
    assert!(!warm_b.eir.ranking.is_empty());

    // A changed collection knob misses and re-collects rather than
    // serving stale data.
    let mut reseeded = CounterMiner::new(MinerConfig {
        seed: 7,
        ..tiny_config()
    });
    Registry::global().drain();
    cm_obs::set_mode(Mode::Summary);
    reseeded
        .analyze_with_store(Benchmark::Sort, &mut store)
        .unwrap();
    let obs = Registry::global().drain();
    cm_obs::set_mode(Mode::Off);
    assert_eq!(obs.counters.get("pipeline.resume.misses"), Some(&1));
    assert_eq!(obs.counters.get("collector.runs"), Some(&1));
}

#[test]
fn truncated_store_is_a_typed_error_not_a_silent_recollect() {
    let _guard = serialized();
    cm_obs::set_mode(Mode::Off);
    let path = temp_store("trunc");

    let mut store = Store::open(&path).unwrap();
    let miner = CounterMiner::new(tiny_config());
    miner.ingest(Benchmark::Join, &mut store).unwrap();
    drop(store);

    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    match Store::open(&path) {
        Err(e) => {
            // Typed corruption surface, never a panic.
            let msg = e.to_string();
            assert!(
                msg.contains("truncated") || msg.contains("checksum") || msg.contains("i/o"),
                "unexpected error: {msg}"
            );
        }
        Ok(_) => panic!("opening a half-truncated store must fail"),
    }
}
