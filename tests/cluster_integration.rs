//! End-to-end tests of the `cluster` analysis mode: ground-truth family
//! recovery, anomaly detection, and the determinism invariants.

use cm_sim::{Benchmark, ALL_BENCHMARKS};
use cm_stats::cluster::adjusted_rand_index;
use cm_store::Store;
use counterminer::{CleanerKind, ClusterConfig, ClusterReport, CounterMiner, MinerConfig};
use std::path::PathBuf;

fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cm_cluster_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(seed: u64) -> MinerConfig {
    MinerConfig {
        runs_per_benchmark: 2,
        events_to_measure: Some(28),
        seed,
        ..MinerConfig::default()
    }
}

fn clustered(seed: u64, cluster_cfg: &ClusterConfig) -> ClusterReport {
    let dir = store_dir(&format!("s{seed}_i{}", cluster_cfg.inject_anomalies));
    let mut store = Store::open(dir.join("c.cmstore")).unwrap();
    let miner = CounterMiner::new(config(seed));
    miner
        .analyze_cluster(&ALL_BENCHMARKS, &mut store, cluster_cfg)
        .unwrap()
}

/// The headline acceptance property: over the full 16-benchmark suite,
/// clustering cleaned counter signatures recovers the simulator's
/// ground-truth workload families — adjusted Rand ≥ 0.9 on every one of
/// eight collection seeds.
#[test]
fn cluster_recovers_ground_truth_families_across_seeds() {
    for seed in 0..8 {
        let report = clustered(seed, &ClusterConfig::default());
        let truth: Vec<usize> = report
            .runs
            .iter()
            .map(|r| r.benchmark.family().index())
            .collect();
        let found: Vec<usize> = report.runs.iter().map(|r| r.cluster).collect();
        let ari = adjusted_rand_index(&found, &truth).unwrap();
        assert!(
            ari >= 0.9,
            "seed {seed}: adjusted Rand {ari:.3} (assignments {found:?})"
        );
        // A recovered family structure should also be well separated.
        assert!(
            report.mean_silhouette > 0.15,
            "seed {seed}: mean silhouette {:.3}",
            report.mean_silhouette
        );
    }
}

/// Injected anomalous runs must be flagged with **zero false
/// negatives**, and flagging must stay meaningful (normal runs are not
/// drowned in false positives).
#[test]
fn cluster_flags_every_injected_anomaly() {
    let cfg = ClusterConfig {
        inject_anomalies: 1,
        ..ClusterConfig::default()
    };
    for seed in [0, 7] {
        let report = clustered(seed, &cfg);
        let injected: Vec<_> = report.runs.iter().filter(|r| r.injected).collect();
        assert_eq!(injected.len(), ALL_BENCHMARKS.len());
        for r in &injected {
            assert!(
                r.anomalous,
                "seed {seed}: injected {} run {} not flagged (distance {:.3})",
                r.benchmark, r.run_index, r.medoid_distance
            );
        }
        let false_positives = report
            .runs
            .iter()
            .filter(|r| r.anomalous && !r.injected)
            .count();
        let normals = report.runs.iter().filter(|r| !r.injected).count();
        assert!(
            false_positives * 4 < normals,
            "seed {seed}: {false_positives}/{normals} normal runs flagged"
        );
    }
}

/// Without injection, the calibrated thresholds flag at most a tiny
/// fraction of ordinary runs.
#[test]
fn clean_suites_are_mostly_unflagged() {
    let report = clustered(3, &ClusterConfig::default());
    let flagged = report.anomaly_count();
    assert!(
        flagged * 8 <= report.runs.len(),
        "{flagged}/{} ordinary runs flagged",
        report.runs.len()
    );
}

/// The mode's determinism invariant: bit-identical output at any thread
/// count, and identical whether the snapshots were ingested by the
/// `point` or the `bayes` cleaner (bayes reconstructs the same values
/// and only adds variance).
#[test]
fn cluster_reports_are_bit_identical_across_threads_and_cleaners() {
    let cfg = ClusterConfig {
        inject_anomalies: 1,
        ..ClusterConfig::default()
    };
    let run_with = |threads: usize, kind: CleanerKind, tag: &str| -> ClusterReport {
        cm_par::set_max_threads(threads);
        let dir = store_dir(tag);
        let mut store = Store::open(dir.join("c.cmstore")).unwrap();
        let miner = CounterMiner::new(MinerConfig {
            cleaner_kind: kind,
            ..config(1)
        });
        let report = miner
            .analyze_cluster(&ALL_BENCHMARKS[..8], &mut store, &cfg)
            .unwrap();
        cm_par::set_max_threads(0);
        report
    };
    let t1 = run_with(1, CleanerKind::Point, "t1");
    let t4 = run_with(4, CleanerKind::Point, "t4");
    assert_eq!(t1, t4, "thread count changed the cluster report");
    for (a, b) in t1.runs.iter().zip(&t4.runs) {
        assert_eq!(a.medoid_distance.to_bits(), b.medoid_distance.to_bits());
        assert_eq!(a.silhouette.to_bits(), b.silhouette.to_bits());
    }
    let bayes = run_with(1, CleanerKind::Bayes, "bayes");
    assert_eq!(
        t1, bayes,
        "signature source (point vs bayes cleaning) changed the report"
    );
}

/// The warm path: `cluster_snapshot` is `None` before ingest, and
/// bit-identical to `analyze_cluster` afterwards — all through
/// `&Store`.
#[test]
fn cluster_snapshot_is_warm_only_and_matches() {
    let dir = store_dir("warm");
    let mut store = Store::open(dir.join("c.cmstore")).unwrap();
    let miner = CounterMiner::new(config(2));
    let cfg = ClusterConfig::default();
    let benchmarks = [Benchmark::Wordcount, Benchmark::Sort, Benchmark::Kmeans];
    let small = ClusterConfig { k: 2, ..cfg };
    assert!(miner
        .cluster_snapshot(&benchmarks, &store, &small)
        .unwrap()
        .is_none());
    let cold = miner
        .analyze_cluster(&benchmarks, &mut store, &small)
        .unwrap();
    let warm = miner
        .cluster_snapshot(&benchmarks, &store, &small)
        .unwrap()
        .expect("snapshots committed");
    assert_eq!(cold, warm);
}

/// Degenerate inputs surface as typed errors, never panics.
#[test]
fn cluster_validates_inputs() {
    let dir = store_dir("valid");
    let mut store = Store::open(dir.join("c.cmstore")).unwrap();
    let miner = CounterMiner::new(config(0));
    let err = miner
        .analyze_cluster(&[], &mut store, &ClusterConfig::default())
        .unwrap_err();
    assert!(err.to_string().contains("at least one benchmark"));
    // k larger than the run count is a typed stats error.
    let cfg = ClusterConfig {
        k: 50,
        ..ClusterConfig::default()
    };
    let err = miner
        .analyze_cluster(&[Benchmark::Scan], &mut store, &cfg)
        .unwrap_err();
    assert!(matches!(err, counterminer::CmError::Stats(_)), "{err}");
}
